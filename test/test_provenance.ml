(* Statement provenance: every lowered statement carries the source
   location it came from (Normalize.forallize and the other frontend
   rewrites must not drop it), every traced message resolves back to a
   real source line through the provenance table, the per-statement
   profile accounts for exactly the traffic Stats counted, and deadlock
   diagnostics name the guilty statement. *)

open F90d
open F90d_base
open F90d_machine
open F90d_trace
open F90d_ir

let cases =
  [
    ("gauss", Programs.gauss ~n:48);
    ("jacobi", Programs.jacobi ~n:37 ~iters:6);
    ("jacobi2d", Programs.jacobi2d ~n:18 ~iters:3 ~p:2 ~q:2);
    ("irregular", Programs.irregular ~n:40);
    ("fft", Programs.fft_butterfly ~n:32);
  ]

let run ~nprocs compiled =
  Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube
    ~jobs:1 ~trace:true ~nprocs compiled

let trace_of (r : Driver.run_result) =
  match r.Driver.trace with
  | Some tr -> tr
  | None -> Alcotest.fail "run ~trace:true returned no trace"

let rec iter_stmts f (st : Ir.stmt) =
  f st;
  match st.Ir.s with
  | Ir.Do_loop { body; _ } | Ir.While_loop { body; _ } -> List.iter (iter_stmts f) body
  | Ir.If_block { arms; els } ->
      List.iter (fun (_, b) -> List.iter (iter_stmts f) b) arms;
      List.iter (iter_stmts f) els
  | _ -> ()

let iter_program f (ir : Ir.program_ir) =
  List.iter (fun (_, u) -> List.iter (iter_stmts f) u.Ir.u_body) ir.Ir.p_units

(* ------------------------------------------------------------------ *)
(* Lowered statements keep their source locations                      *)
(* ------------------------------------------------------------------ *)

let test_sloc_preserved () =
  List.iter
    (fun (name, src) ->
      let ir = (Driver.compile src).Driver.c_ir in
      iter_program
        (fun (st : Ir.stmt) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s stmt %d: sid positive" name st.Ir.sid)
            true (st.Ir.sid > 0);
          (* forallize and the other rewrites must not synthesize
             location-less statements: comm attribution keys on line *)
          Alcotest.(check bool)
            (Printf.sprintf "%s stmt %d: sloc has a line" name st.Ir.sid)
            true
            (st.Ir.sloc.Loc.line > 0);
          match st.Ir.s with
          | Ir.Forall f when f.Ir.f_pre <> [] ->
              Alcotest.(check bool)
                (Printf.sprintf "%s stmt %d: comm-bearing forall located" name st.Ir.sid)
                true
                (st.Ir.sloc.Loc.line > 0)
          | _ -> ())
        ir)
    cases

let test_prov_table_complete () =
  List.iter
    (fun (name, src) ->
      let ir = (Driver.compile src).Driver.c_ir in
      let prov = Ir.prov_table ir in
      (* every statement's sid resolves, to the statement's own sloc *)
      iter_program
        (fun (st : Ir.stmt) ->
          match Hashtbl.find_opt prov st.Ir.sid with
          | None ->
              Alcotest.fail (Printf.sprintf "%s: sid %d not in prov table" name st.Ir.sid)
          | Some p ->
              Alcotest.(check string)
                (Printf.sprintf "%s sid %d: prov loc = stmt sloc" name st.Ir.sid)
                (Loc.file_line st.Ir.sloc) (Loc.file_line p.Ir.pv_loc))
        ir;
      (* epilogue provenance points at the program unit itself *)
      List.iter
        (fun (_, u) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: epilogue located" name u.Ir.u_name)
            true
            (u.Ir.u_epilogue.Ir.pv_loc.Loc.line > 0))
        ir.Ir.p_units)
    cases

(* ------------------------------------------------------------------ *)
(* Every traced send/recv/span resolves to a real source line          *)
(* ------------------------------------------------------------------ *)

let test_trace_sids_resolve () =
  List.iter
    (fun (name, src) ->
      let compiled = Driver.compile src in
      let ir = compiled.Driver.c_ir in
      let prov = Ir.prov_table ir in
      let r = run ~nprocs:4 compiled in
      let tr = trace_of r in
      let check_sid what sid =
        Alcotest.(check bool) (Printf.sprintf "%s: %s has a sid" name what) true (sid > 0);
        match Hashtbl.find_opt prov sid with
        | None -> Alcotest.fail (Printf.sprintf "%s: %s sid %d unresolvable" name what sid)
        | Some p ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: %s sid %d -> real line" name what sid)
              true
              (p.Ir.pv_loc.Loc.line > 0)
      in
      for rank = 0 to Trace.nprocs tr - 1 do
        Array.iter
          (fun (e : Trace.event) ->
            match e.Trace.kind with
            | Trace.Send { sid; _ } -> check_sid "send" sid
            | Trace.Recv { sid; _ } -> check_sid "recv" sid
            | Trace.Span { sid; _ } -> check_sid "span" sid
            | Trace.Mark _ -> ())
          (Trace.events tr ~rank)
      done)
    cases

(* ------------------------------------------------------------------ *)
(* Per-statement profile accounts for exactly the Stats totals         *)
(* ------------------------------------------------------------------ *)

let test_profile_sums () =
  List.iter
    (fun (name, src) ->
      let compiled = Driver.compile src in
      (* jacobi2d fixes a 2x2 PROCESSORS grid: only 4 PEs fit *)
      let sizes = if name = "jacobi2d" then [ 4 ] else [ 4; 8 ] in
      List.iter
        (fun nprocs ->
          let r = run ~nprocs compiled in
          let rows = Analyze.per_stmt_profile (trace_of r) in
          let msgs = List.fold_left (fun a (s : Analyze.srow) -> a + s.Analyze.s_msgs) 0 rows in
          let bytes =
            List.fold_left (fun a (s : Analyze.srow) -> a + s.Analyze.s_bytes) 0 rows
          in
          let wait =
            List.fold_left (fun a (s : Analyze.srow) -> a +. s.Analyze.s_wait_s) 0. rows
          in
          Alcotest.(check int)
            (Printf.sprintf "%s nprocs=%d: profile messages = Stats" name nprocs)
            r.Driver.stats.Stats.messages msgs;
          Alcotest.(check int)
            (Printf.sprintf "%s nprocs=%d: profile bytes = Stats" name nprocs)
            r.Driver.stats.Stats.bytes bytes;
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s nprocs=%d: profile wait = Stats" name nprocs)
            r.Driver.stats.Stats.recv_wait wait)
        sizes)
    cases

(* hot_statements is a join over the same rows: nothing may be dropped *)
let test_hot_statements_join () =
  let compiled = Driver.compile (Programs.gauss ~n:48) in
  let r = run ~nprocs:8 compiled in
  let hots = F90d_report.Report.hot_statements compiled.Driver.c_ir (trace_of r) in
  let msgs = List.fold_left (fun a (h : F90d_report.Report.hot) -> a + h.F90d_report.Report.h_msgs) 0 hots in
  let bytes =
    List.fold_left (fun a (h : F90d_report.Report.hot) -> a + h.F90d_report.Report.h_bytes) 0 hots
  in
  Alcotest.(check int) "hot stmts: messages = Stats" r.Driver.stats.Stats.messages msgs;
  Alcotest.(check int) "hot stmts: bytes = Stats" r.Driver.stats.Stats.bytes bytes;
  List.iter
    (fun (h : F90d_report.Report.hot) ->
      Alcotest.(check bool) "hot stmt resolves to a source line" true
        (h.F90d_report.Report.h_loc.Loc.line > 0))
    hots

(* ------------------------------------------------------------------ *)
(* Deadlock diagnostics name the statement                             *)
(* ------------------------------------------------------------------ *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_deadlock_names_statement () =
  let cfg = Engine.config 2 in
  match
    Engine.run cfg (fun ctx ->
        Engine.set_stmt ctx ~sid:7 ~loc:(Loc.make ~file:"solver.f90" ~line:42 ~col:1);
        ignore (Engine.recv ctx ~src:(1 - Engine.rank ctx) ~tag:9))
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      Alcotest.(check bool)
        (Printf.sprintf "deadlock names file:line (%s)" msg)
        true
        (contains ~sub:"solver.f90:42" msg);
      Alcotest.(check bool)
        (Printf.sprintf "deadlock names stmt (%s)" msg)
        true
        (contains ~sub:"stmt 7" msg)

(* interpreter-level: an actual program deadlock points at the source *)
let test_runtime_errors_located () =
  (* out-of-bounds subscript: location must be the statement's, not <no-loc> *)
  let src =
    "PROGRAM OOB\n\
     INTEGER A(8)\n\
     !HPF$ PROCESSORS P(2)\n\
     !HPF$ DISTRIBUTE A(BLOCK) ONTO P\n\
     INTEGER I\n\
     FORALL (I = 1:8) A(I) = I\n\
     I = A(99)\n\
     PRINT *, I\n\
     END\n"
  in
  match run ~nprocs:2 (Driver.compile src) with
  | _ -> Alcotest.fail "expected out-of-bounds error"
  | exception Diag.Error (loc, _) ->
      Alcotest.(check bool)
        (Printf.sprintf "runtime error located (%s)" (Loc.file_line loc))
        true (loc.Loc.line > 0)

(* ------------------------------------------------------------------ *)
(* Explain reports mention the Table 1/2 classifications               *)
(* ------------------------------------------------------------------ *)

let test_explain_contents () =
  let text src = F90d_report.Report.explain_text (Driver.compile src).Driver.c_ir in
  let gauss = text (Programs.gauss ~n:48) in
  List.iter
    (fun sub ->
      Alcotest.(check bool) (Printf.sprintf "gauss explain mentions %S" sub) true
        (contains ~sub gauss))
    [ "multicast"; "Table 1"; "owner computes"; "distribution"; "BLOCK" ];
  let jacobi = text (Programs.jacobi ~n:37 ~iters:6) in
  Alcotest.(check bool) "jacobi explain mentions overlap_shift" true
    (contains ~sub:"overlap_shift" jacobi);
  let irregular = text (Programs.irregular ~n:40) in
  Alcotest.(check bool) "irregular explain mentions gather (Table 2)" true
    (contains ~sub:"gather" irregular)

let test_explain_json_wellformed () =
  List.iter
    (fun (name, src) ->
      let js = F90d_report.Report.explain_json (Driver.compile src).Driver.c_ir in
      Alcotest.(check bool) (name ^ ": explain json has statements") true
        (contains ~sub:"\"statements\"" js);
      (* cheap structural sanity: braces and brackets balance *)
      let depth = ref 0 and ok = ref true in
      String.iter
        (fun c ->
          (match c with
          | '{' | '[' -> incr depth
          | '}' | ']' -> decr depth
          | _ -> ());
          if !depth < 0 then ok := false)
        js;
      Alcotest.(check bool) (name ^ ": explain json balanced") true (!ok && !depth = 0))
    cases

let () =
  Alcotest.run "provenance"
    [
      ( "provenance",
        [
          Alcotest.test_case "slocs preserved through lowering" `Quick test_sloc_preserved;
          Alcotest.test_case "prov table complete" `Quick test_prov_table_complete;
          Alcotest.test_case "traced events resolve to source" `Quick test_trace_sids_resolve;
          Alcotest.test_case "per-stmt profile = Stats totals" `Quick test_profile_sums;
          Alcotest.test_case "hot statements join drops nothing" `Quick
            test_hot_statements_join;
          Alcotest.test_case "deadlock names statement" `Quick test_deadlock_names_statement;
          Alcotest.test_case "runtime errors located" `Quick test_runtime_errors_located;
          Alcotest.test_case "explain mentions classifications" `Quick test_explain_contents;
          Alcotest.test_case "explain json well-formed" `Quick test_explain_json_wellformed;
        ] );
    ]
