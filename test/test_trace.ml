(* The tracing subsystem (lib/trace): recording is rank-private and the
   simulation deterministic, so traces must be byte-identical between the
   sequential and domain-parallel engines; the analyses must agree with
   the independently-collected Stats; and a disabled trace handle must be
   an exact no-op.  The Chrome export is validated with a small JSON
   parser kept inside this test (no new dependencies). *)

open F90d
open F90d_machine
open F90d_trace

(* ------------------------------------------------------------------ *)
(* A minimal JSON validator (syntax only)                              *)
(* ------------------------------------------------------------------ *)

module Json_check = struct
  exception Bad of string

  let validate s =
    let n = String.length s in
    let pos = ref 0 in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = incr pos in
    let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal w =
      String.iter expect w
    in
    let string_ () =
      expect '"';
      let rec go () =
        match peek () with
        | None -> fail "unterminated string"
        | Some '"' -> advance ()
        | Some '\\' -> (
            advance ();
            match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                advance ();
                go ()
            | Some 'u' ->
                advance ();
                for _ = 1 to 4 do
                  match peek () with
                  | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
                  | _ -> fail "bad \\u escape"
                done;
                go ()
            | _ -> fail "bad escape")
        | Some c when Char.code c < 0x20 -> fail "control char in string"
        | Some _ ->
            advance ();
            go ()
      in
      go ()
    in
    let number () =
      let digits () =
        let saw = ref false in
        let rec go () =
          match peek () with
          | Some '0' .. '9' ->
              saw := true;
              advance ();
              go ()
          | _ -> ()
        in
        go ();
        if not !saw then fail "expected digit"
      in
      (match peek () with Some '-' -> advance () | _ -> ());
      digits ();
      (match peek () with
      | Some '.' ->
          advance ();
          digits ()
      | _ -> ());
      match peek () with
      | Some ('e' | 'E') ->
          advance ();
          (match peek () with Some ('+' | '-') -> advance () | _ -> ());
          digits ()
      | _ -> ()
    in
    let rec value () =
      skip_ws ();
      (match peek () with
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then advance ()
          else
            let rec members () =
              skip_ws ();
              string_ ();
              skip_ws ();
              expect ':';
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ()
              | Some '}' -> advance ()
              | _ -> fail "expected ',' or '}'"
            in
            members ()
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then advance ()
          else
            let rec elements () =
              value ();
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements ()
              | Some ']' -> advance ()
              | _ -> fail "expected ',' or ']'"
            in
            elements ()
      | Some '"' -> string_ ()
      | Some 't' -> literal "true"
      | Some 'f' -> literal "false"
      | Some 'n' -> literal "null"
      | Some ('-' | '0' .. '9') -> number ()
      | _ -> fail "expected value");
      skip_ws ()
    in
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
end

(* ------------------------------------------------------------------ *)
(* Helpers                                                             *)
(* ------------------------------------------------------------------ *)

let run ?(trace = true) ~jobs ~nprocs compiled =
  Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube ~jobs
    ~trace ~nprocs compiled

let cases =
  [
    ("gauss", Programs.gauss ~n:48);
    ("jacobi", Programs.jacobi ~n:37 ~iters:6);
    ("irregular", Programs.irregular ~n:40);
  ]

let trace_of (r : Driver.run_result) =
  match r.Driver.trace with
  | Some tr -> tr
  | None -> Alcotest.fail "run ~trace:true returned no trace"

(* ------------------------------------------------------------------ *)
(* Engine independence: byte-identical traces, sequential vs parallel  *)
(* ------------------------------------------------------------------ *)

let test_engine_independent () =
  List.iter
    (fun (name, src) ->
      let compiled = Driver.compile src in
      List.iter
        (fun nprocs ->
          let seq = run ~jobs:1 ~nprocs compiled in
          let par = run ~jobs:4 ~nprocs compiled in
          Alcotest.(check string)
            (Printf.sprintf "%s nprocs=%d: chrome json byte-identical" name nprocs)
            (Trace.to_chrome_json (trace_of seq))
            (Trace.to_chrome_json (trace_of par)))
        [ 1; 4; 16 ])
    cases

(* ------------------------------------------------------------------ *)
(* Chrome export is well-formed JSON                                   *)
(* ------------------------------------------------------------------ *)

let test_chrome_json_valid () =
  List.iter
    (fun (name, src) ->
      let r = run ~jobs:1 ~nprocs:4 (Driver.compile src) in
      let js = Trace.to_chrome_json (trace_of r) in
      match Json_check.validate js with
      | () -> ()
      | exception Json_check.Bad msg -> Alcotest.fail (name ^ ": invalid JSON: " ^ msg))
    cases

(* ------------------------------------------------------------------ *)
(* Critical path tiles [0, elapsed]                                    *)
(* ------------------------------------------------------------------ *)

let test_critical_path_total () =
  List.iter
    (fun (name, src) ->
      let compiled = Driver.compile src in
      List.iter
        (fun nprocs ->
          let r = run ~jobs:1 ~nprocs compiled in
          let segs = Analyze.critical_path (trace_of r) in
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "%s nprocs=%d: critical path = elapsed" name nprocs)
            r.Driver.elapsed (Analyze.total segs);
          (* segments are contiguous and chronological *)
          ignore
            (List.fold_left
               (fun t (s : Analyze.segment) ->
                 Alcotest.(check (float 0.))
                   (name ^ ": segments contiguous") t s.Analyze.sg_t0;
                 s.Analyze.sg_t1)
               0. segs))
        [ 4; 16 ])
    cases

(* ------------------------------------------------------------------ *)
(* Profile agrees with the independently-collected Stats               *)
(* ------------------------------------------------------------------ *)

let test_profile_matches_stats () =
  List.iter
    (fun (name, src) ->
      let r = run ~jobs:1 ~nprocs:8 (Driver.compile src) in
      let tr = trace_of r in
      let prof = Analyze.per_tag_profile tr in
      (* per-tag messages and bytes equal Stats.per_tag *)
      Alcotest.(check bool)
        (name ^ ": per-tag profile = Stats.per_tag")
        true
        (List.map (fun p -> (p.Analyze.p_tag, (p.Analyze.p_msgs, p.Analyze.p_bytes))) prof
        = Stats.per_tag r.Driver.stats);
      (* totals equal Stats.t *)
      Alcotest.(check int)
        (name ^ ": profile total bytes = stats.bytes")
        r.Driver.stats.Stats.bytes
        (List.fold_left (fun acc p -> acc + p.Analyze.p_bytes) 0 prof);
      Alcotest.(check int)
        (name ^ ": profile total messages = stats.messages")
        r.Driver.stats.Stats.messages
        (List.fold_left (fun acc p -> acc + p.Analyze.p_msgs) 0 prof);
      Alcotest.(check (float 1e-9))
        (name ^ ": profile total wait = stats.recv_wait")
        r.Driver.stats.Stats.recv_wait
        (List.fold_left (fun acc p -> acc +. p.Analyze.p_wait_s) 0. prof);
      (* family breakdown matches Stats.breakdown (same grouping+order) *)
      Alcotest.(check bool)
        (name ^ ": family breakdown = Stats.breakdown")
        true
        (List.map (fun (nm, m, b, _, _, _) -> (nm, m, b))
           (Analyze.breakdown tr ~name_of:F90d_runtime.Tags.family_name)
        = Stats.breakdown r.Driver.stats ~name_of:F90d_runtime.Tags.family_name))
    cases

(* ------------------------------------------------------------------ *)
(* Disabled tracing is an exact no-op                                  *)
(* ------------------------------------------------------------------ *)

let test_disabled_no_op () =
  List.iter
    (fun (name, src) ->
      let compiled = Driver.compile src in
      let off = run ~trace:false ~jobs:1 ~nprocs:8 compiled in
      let on = run ~trace:true ~jobs:1 ~nprocs:8 compiled in
      Alcotest.(check bool) (name ^ ": no trace when off") true (off.Driver.trace = None);
      Alcotest.(check (float 0.)) (name ^ ": elapsed unchanged") on.Driver.elapsed
        off.Driver.elapsed;
      Alcotest.(check (array (float 0.))) (name ^ ": clocks unchanged") on.Driver.clocks
        off.Driver.clocks;
      Alcotest.(check int) (name ^ ": messages unchanged") on.Driver.stats.Stats.messages
        off.Driver.stats.Stats.messages;
      Alcotest.(check int) (name ^ ": bytes unchanged") on.Driver.stats.Stats.bytes
        off.Driver.stats.Stats.bytes;
      Alcotest.(check (float 0.)) (name ^ ": recv_wait unchanged")
        on.Driver.stats.Stats.recv_wait off.Driver.stats.Stats.recv_wait;
      Alcotest.(check int) (name ^ ": sched_builds unchanged")
        on.Driver.stats.Stats.sched_builds off.Driver.stats.Stats.sched_builds;
      Alcotest.(check int) (name ^ ": sched_hits unchanged")
        on.Driver.stats.Stats.sched_hits off.Driver.stats.Stats.sched_hits;
      Alcotest.(check bool) (name ^ ": per-tag unchanged") true
        (Stats.per_tag on.Driver.stats = Stats.per_tag off.Driver.stats))
    cases

(* ------------------------------------------------------------------ *)
(* Trace contents: compute accumulator and clock bookkeeping           *)
(* ------------------------------------------------------------------ *)

let test_clock_decomposition () =
  (* final clock = charged compute + send busy + receive wait, per rank;
     relays live on the message-system timeline, not the CPU's *)
  let r = run ~jobs:1 ~nprocs:8 (Driver.compile (Programs.gauss ~n:48)) in
  let tr = trace_of r in
  for rank = 0 to Trace.nprocs tr - 1 do
    let send_busy = ref 0. and wait = ref 0. in
    Array.iter
      (fun (e : Trace.event) ->
        match e.Trace.kind with
        | Trace.Send { relay = true; _ } -> ()
        | Trace.Send _ -> send_busy := !send_busy +. (e.Trace.t1 -. e.Trace.t0)
        | Trace.Recv _ -> wait := !wait +. (e.Trace.t1 -. e.Trace.t0)
        | _ -> ())
      (Trace.events tr ~rank);
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "p%d: clock = compute + send + wait" rank)
      (Trace.clocks tr).(rank)
      (Trace.compute_time tr ~rank +. !send_busy +. !wait)
  done

(* ------------------------------------------------------------------ *)
(* Satellite: Driver.parse_jobs / F90D_JOBS handling                   *)
(* ------------------------------------------------------------------ *)

let test_parse_jobs () =
  (match Driver.parse_jobs "4" with
  | Ok 4 -> ()
  | _ -> Alcotest.fail "parse_jobs \"4\" should be Ok 4");
  (match Driver.parse_jobs " 8 " with
  | Ok 8 -> ()
  | _ -> Alcotest.fail "parse_jobs \" 8 \" should be Ok 8");
  let expect_error s =
    match Driver.parse_jobs s with
    | Ok n -> Alcotest.fail (Printf.sprintf "parse_jobs %S should fail, got Ok %d" s n)
    | Error msg ->
        (* the warning must name the offending value *)
        Alcotest.(check bool)
          (Printf.sprintf "warning for %S names the value" s)
          true
          (let re = Str.regexp_string s in
           try
             ignore (Str.search_forward re msg 0);
             true
           with Not_found -> false)
  in
  expect_error "banana";
  expect_error "0";
  expect_error "-3";
  expect_error ""

(* ------------------------------------------------------------------ *)
(* Satellite: Deadlock payload names awaited and pending channels      *)
(* ------------------------------------------------------------------ *)

let test_deadlock_payload () =
  (* p0 sends tag 7 then waits for an answer that never comes; p1 waits
     for tag 8 — the mailbox holds the tag-7 message, the await is
     (src=0, tag=8).  Both facts must appear in the exception. *)
  let cfg = Engine.config 2 in
  match
    Engine.run cfg (fun ctx ->
        if Engine.rank ctx = 0 then begin
          Engine.send ctx ~dest:1 ~tag:7 Message.Empty;
          ignore (Engine.recv ctx ~src:1 ~tag:9)
        end
        else ignore (Engine.recv ctx ~src:0 ~tag:8))
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      let contains needle =
        Alcotest.(check bool)
          (Printf.sprintf "deadlock message contains %S" needle)
          true
          (let re = Str.regexp_string needle in
           try
             ignore (Str.search_forward re msg 0);
             true
           with Not_found -> false)
      in
      contains "(src=0,tag=8)";
      (* the pending tag-7 message is listed for the blocked receiver *)
      contains "(src=0,tag=7)";
      (* p0 waits on an empty mailbox *)
      contains "(src=1,tag=9)"

(* ------------------------------------------------------------------ *)
(* Satellite: Stats ordering and topology hop charging                 *)
(* ------------------------------------------------------------------ *)

let test_stats_ordering () =
  let r = run ~trace:false ~jobs:1 ~nprocs:8 (Driver.compile (Programs.irregular ~n:40)) in
  let pt = Stats.per_tag r.Driver.stats in
  Alcotest.(check bool) "per_tag sorted by tag" true
    (List.sort (fun (a, _) (b, _) -> compare a b) pt = pt);
  Alcotest.(check bool) "per_tag non-trivial" true (List.length pt > 1);
  let bd = Stats.breakdown r.Driver.stats ~name_of:F90d_runtime.Tags.family_name in
  let msgs = List.map (fun (_, m, _) -> m) bd in
  Alcotest.(check bool) "breakdown sorted most-messages-first" true
    (List.sort (fun a b -> compare b a) msgs = msgs);
  (* breakdown totals = per_tag totals *)
  Alcotest.(check int) "breakdown msgs total"
    (List.fold_left (fun acc (_, (m, _)) -> acc + m) 0 pt)
    (List.fold_left (fun acc (_, m, _) -> acc + m) 0 bd);
  Alcotest.(check int) "breakdown bytes total"
    (List.fold_left (fun acc (_, (_, b)) -> acc + b) 0 pt)
    (List.fold_left (fun acc (_, _, b) -> acc + b) 0 bd)

let test_hop_charging () =
  (* A model where only the per-hop latency is non-zero isolates the
     topology term: p0 -> p7 in an 8-node hypercube is 3 hops (2 beyond
     the first), on a crossbar 1 hop.  The receiver starts at clock 0,
     so its wait time is exactly the arrival time. *)
  let model = { Model.ideal with Model.name = "hops"; Model.hop = 1e-3 } in
  let wait topology =
    let cfg = Engine.config ~model ~topology ~tracing:true 8 in
    let report =
      Engine.run cfg (fun ctx ->
          if Engine.rank ctx = 0 then Engine.send ctx ~dest:7 ~tag:7 Message.Empty
          else if Engine.rank ctx = 7 then ignore (Engine.recv ctx ~src:0 ~tag:7))
    in
    report.Engine.stats.Stats.recv_wait
  in
  Alcotest.(check (float 0.)) "crossbar: no hop latency" 0. (wait Topology.Full);
  Alcotest.(check (float 1e-12)) "hypercube: 2 extra hops charged" 2e-3
    (wait Topology.Hypercube);
  (* the wire segment of the critical path carries the hop latency too *)
  let cfg = Engine.config ~model ~topology:Topology.Hypercube ~tracing:true 8 in
  let report =
    Engine.run cfg (fun ctx ->
        if Engine.rank ctx = 0 then Engine.send ctx ~dest:7 ~tag:7 Message.Empty
        else if Engine.rank ctx = 7 then ignore (Engine.recv ctx ~src:0 ~tag:7))
  in
  let tr = Option.get report.Engine.trace in
  let segs = Analyze.critical_path tr in
  let wire =
    List.exists
      (fun (s : Analyze.segment) ->
        match s.Analyze.sg_kind with
        | Analyze.Wire { src = 0; tag = 7; _ } ->
            abs_float (s.Analyze.sg_t1 -. s.Analyze.sg_t0 -. 2e-3) < 1e-12
        | _ -> false)
      segs
  in
  Alcotest.(check bool) "critical path has the 2-hop wire segment" true wire

let () =
  Alcotest.run "f90d_trace"
    [
      ( "determinism",
        [
          Alcotest.test_case "byte-identical traces, seq vs 4 domains" `Quick
            test_engine_independent;
        ] );
      ( "chrome export",
        [ Alcotest.test_case "validates as JSON" `Quick test_chrome_json_valid ] );
      ( "critical path",
        [
          Alcotest.test_case "total = elapsed, contiguous tiling" `Quick
            test_critical_path_total;
        ] );
      ( "profile",
        [
          Alcotest.test_case "agrees with Stats" `Quick test_profile_matches_stats;
          Alcotest.test_case "clock = compute + send + wait" `Quick test_clock_decomposition;
        ] );
      ( "zero-cost when off",
        [ Alcotest.test_case "disabled handle is a no-op" `Quick test_disabled_no_op ] );
      ( "satellites",
        [
          Alcotest.test_case "F90D_JOBS parsing" `Quick test_parse_jobs;
          Alcotest.test_case "deadlock payload lists channels" `Quick test_deadlock_payload;
          Alcotest.test_case "stats ordering invariants" `Quick test_stats_ordering;
          Alcotest.test_case "topology hop charging" `Quick test_hop_charging;
        ] );
    ]
