(* The domain-parallel engine must be an observational no-op: between
   communication points node programs are independent (the paper's loosely
   synchronous model, §2), every (src, tag) channel is a single-producer
   single-consumer FIFO, and all delivery decisions are made by the
   sequential coordinator — so reports are bit-identical to the
   sequential engine.  These tests pin that, plus the per-run isolation
   of the schedule cache. *)

open F90d
open F90d_machine

let checkb = Alcotest.(check bool)
let checkf = Alcotest.(check (float 0.))
(* eps 0.: bit-identical, not approximately equal *)

let run ~jobs ~nprocs compiled =
  Driver.run ~jobs ~model:Model.ipsc860 ~topology:Topology.Hypercube ~nprocs compiled

let same_report name (seq : Driver.run_result) (par : Driver.run_result) ~finals =
  checkf (name ^ ": elapsed") seq.Driver.elapsed par.Driver.elapsed;
  Alcotest.(check (array (float 0.))) (name ^ ": clocks") seq.Driver.clocks par.Driver.clocks;
  Alcotest.(check int) (name ^ ": messages") seq.Driver.stats.Stats.messages
    par.Driver.stats.Stats.messages;
  Alcotest.(check int) (name ^ ": bytes") seq.Driver.stats.Stats.bytes
    par.Driver.stats.Stats.bytes;
  checkf (name ^ ": recv_wait") seq.Driver.stats.Stats.recv_wait
    par.Driver.stats.Stats.recv_wait;
  checkb
    (name ^ ": per-tag message counts")
    true
    (Stats.per_tag seq.Driver.stats = Stats.per_tag par.Driver.stats);
  List.iter
    (fun arr ->
      checkb
        (name ^ ": gathered " ^ arr)
        true
        (F90d_base.Ndarray.equal (Driver.final seq arr) (Driver.final par arr)))
    finals

let determinism_case source ~finals () =
  let compiled = Driver.compile source in
  List.iter
    (fun nprocs ->
      let seq = run ~jobs:1 ~nprocs compiled in
      let par = run ~jobs:4 ~nprocs compiled in
      same_report (Printf.sprintf "nprocs=%d" nprocs) seq par ~finals)
    [ 1; 4; 16 ]

let test_gauss = determinism_case (Programs.gauss ~n:48) ~finals:[ "A" ]
let test_jacobi = determinism_case (Programs.jacobi ~n:37 ~iters:6) ~finals:[ "U"; "V" ]
let test_irregular = determinism_case (Programs.irregular ~n:40) ~finals:[ "A"; "C" ]

(* ------------------------------------------------------------------ *)
(* Schedule-cache isolation between consecutive runs                   *)
(* ------------------------------------------------------------------ *)

(* The compiler emits the same reuse keys (e.g. "IRREG:s1:B") for every
   machine size, so a process-global cache would hand a 4-processor
   schedule to a later 2-processor run.  The cache lives in the per-rank
   Rctx now; consecutive runs must neither corrupt each other's results
   nor hide each other's inspector builds. *)
let test_cache_isolated_across_nprocs () =
  let compiled = Driver.compile (Programs.irregular ~n:48) in
  let reference = Driver.run ~nprocs:1 compiled in
  let r4 = Driver.run ~nprocs:4 compiled in
  let r2 = Driver.run ~nprocs:2 compiled in
  List.iter
    (fun arr ->
      let want = Driver.final reference arr in
      checkb ("4-proc " ^ arr) true (F90d_base.Ndarray.approx_equal (Driver.final r4 arr) want);
      checkb ("2-proc " ^ arr) true (F90d_base.Ndarray.approx_equal (Driver.final r2 arr) want))
    [ "A"; "C" ];
  checkb "second run built its own schedules" true (r2.Driver.stats.Stats.sched_builds > 0)

let test_cache_per_run_stats_repeat () =
  (* the same run twice: identical builds and hits, i.e. the second run
     found nothing pre-populated *)
  let compiled = Driver.compile (Programs.irregular ~n:48) in
  let r1 = Driver.run ~nprocs:4 compiled in
  let r2 = Driver.run ~nprocs:4 compiled in
  Alcotest.(check int) "same builds" r1.Driver.stats.Stats.sched_builds
    r2.Driver.stats.Stats.sched_builds;
  Alcotest.(check int) "same hits" r1.Driver.stats.Stats.sched_hits
    r2.Driver.stats.Stats.sched_hits;
  checkb "schedules were built" true (r1.Driver.stats.Stats.sched_builds > 0);
  checkb "schedules were reused within the run" true (r1.Driver.stats.Stats.sched_hits > 0)

let test_cache_isolated_across_distributions () =
  (* same program shape, different DISTRIBUTE: stale schedules from the
     BLOCK run must not leak into the CYCLIC run *)
  let reference dist =
    Driver.run ~nprocs:1 (Driver.compile (Programs.gauss_dist ~dist ~n:24))
  in
  let rb = Driver.run ~nprocs:4 (Driver.compile (Programs.gauss_dist ~dist:`Block ~n:24)) in
  let rc = Driver.run ~nprocs:4 (Driver.compile (Programs.gauss_dist ~dist:`Cyclic ~n:24)) in
  checkb "block result" true
    (F90d_base.Ndarray.approx_equal (Driver.final rb "A") (Driver.final (reference `Block) "A"));
  checkb "cyclic result" true
    (F90d_base.Ndarray.approx_equal (Driver.final rc "A") (Driver.final (reference `Cyclic) "A"))

let () =
  Alcotest.run "f90d_determinism"
    [
      ( "parallel engine = sequential engine",
        [
          Alcotest.test_case "gauss" `Quick test_gauss;
          Alcotest.test_case "jacobi (paper section 4)" `Quick test_jacobi;
          Alcotest.test_case "irregular PARTI (paper section 5.3.2)" `Quick test_irregular;
        ] );
      ( "schedule cache isolation",
        [
          Alcotest.test_case "across machine sizes" `Quick test_cache_isolated_across_nprocs;
          Alcotest.test_case "repeat runs report own stats" `Quick test_cache_per_run_stats_repeat;
          Alcotest.test_case "across distributions" `Quick test_cache_isolated_across_distributions;
        ] );
    ]
