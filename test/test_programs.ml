(* Integration tests over the benchmark programs: the compiled Gaussian
   elimination against the sequential oracle and the hand-written baseline,
   grid/machine invariance, kernel-vs-interpreter equivalence, the F77+MP
   emitter, and the optimization passes. *)

open F90d_base
open F90d
open F90d_machine

let checkb = Alcotest.(check bool)
let check = Alcotest.(check int)

let solution_of_run r n =
  let a = Driver.final r "A" in
  Array.init n (fun i -> Scalar.to_real (Ndarray.get a [| i + 1; n + 1 |]))

let max_dev a b =
  let d = ref 0. in
  Array.iteri (fun i x -> d := Float.max !d (Float.abs (x -. b.(i)))) a;
  !d

(* ------------------------------------------------------------------ *)
(* Gaussian elimination                                                *)
(* ------------------------------------------------------------------ *)

let test_gauss_matches_oracle () =
  let n = 40 in
  let seq = Baselines.seq_gauss ~n in
  let compiled = Driver.compile (Programs.gauss ~n) in
  List.iter
    (fun p ->
      let r = Driver.run ~nprocs:p compiled in
      let dev = max_dev (solution_of_run r n) seq in
      if dev > 1e-9 then Alcotest.failf "P=%d deviates by %g" p dev)
    [ 1; 2; 3; 4; 8 ]

let test_gauss_cyclic_matches_oracle () =
  (* CYCLIC column distribution: same results, better load balance *)
  let n = 32 in
  let seq = Baselines.seq_gauss ~n in
  let compiled = Driver.compile (Programs.gauss_dist ~dist:`Cyclic ~n) in
  List.iter
    (fun p ->
      let r = Driver.run ~nprocs:p compiled in
      let dev = max_dev (solution_of_run r n) seq in
      if dev > 1e-9 then Alcotest.failf "cyclic P=%d deviates by %g" p dev)
    [ 1; 3; 4 ]

let test_gauss_cyclic_balances_load () =
  let n = 96 in
  let time dist =
    (Driver.run ~collect_finals:false ~model:Model.ipsc860 ~nprocs:8
       (Driver.compile (Programs.gauss_dist ~dist ~n)))
      .Driver.elapsed
  in
  checkb "cyclic beats block at scale" true (time `Cyclic < time `Block)

let test_kernel_specializer_engaged () =
  (* the elimination loops must take the fast path, or Table 4 at
     1023x1024 silently becomes intractable *)
  F90d_exec.Kernel.reset_runs ();
  let n = 32 in
  ignore (Driver.run ~nprocs:4 (Driver.compile (Programs.gauss ~n)));
  (* at least the two elimination FORALLs per step on active processors *)
  checkb "kernel runs" true (F90d_exec.Kernel.runs () > n);
  F90d_exec.Kernel.reset_runs ()

let test_gauss_hand_matches_oracle () =
  let n = 40 in
  let seq = Baselines.seq_gauss ~n in
  List.iter
    (fun p ->
      let h = Baselines.run_hand_gauss ~nprocs:p ~n () in
      let dev = max_dev h.Baselines.solution seq in
      if dev > 1e-9 then Alcotest.failf "hand P=%d deviates by %g" p dev)
    [ 1; 2; 4; 8 ]

let test_gauss_machine_invariance () =
  (* machine model and topology change timing, never results *)
  let n = 24 in
  let compiled = Driver.compile (Programs.gauss ~n) in
  let base = solution_of_run (Driver.run ~nprocs:4 compiled) n in
  List.iter
    (fun (model, topo) ->
      let r = Driver.run ~model ~topology:topo ~nprocs:4 compiled in
      checkb "identical solutions" true (max_dev (solution_of_run r n) base < 1e-12))
    [ (Model.ipsc860, Topology.Hypercube); (Model.ncube2, Topology.Mesh) ]

let test_gauss_timing_monotone () =
  (* parallelism must pay off while compute dominates (small P at this
     size); the hand-written code must never be slower than the
     compiler's.  Strict monotonicity in P is deliberately NOT asserted:
     at N=64 communication overtakes compute around P=8, as on the real
     machines. *)
  let n = 64 in
  let compiled = Driver.compile (Programs.gauss ~n) in
  let times =
    List.map
      (fun p ->
        let r =
          Driver.run ~collect_finals:false ~model:Model.ipsc860 ~topology:Topology.Hypercube
            ~nprocs:p compiled
        in
        let h = Baselines.run_hand_gauss ~nprocs:p ~n () in
        checkb "hand <= compiler" true (h.Baselines.elapsed <= r.Driver.elapsed);
        r.Driver.elapsed)
      [ 1; 2; 4 ]
  in
  match times with
  | [ t1; t2; t4 ] ->
      checkb "P=2 beats P=1" true (t2 < t1);
      checkb "P=4 beats P=2" true (t4 < t2)
  | _ -> Alcotest.fail "unexpected row count"

(* ------------------------------------------------------------------ *)
(* Other benchmark programs                                            *)
(* ------------------------------------------------------------------ *)

let test_jacobi_grid_invariance () =
  let run src nprocs = Driver.final (Driver.run ~nprocs (Driver.compile src)) "A" in
  let a22 = run (Programs.jacobi2d ~n:14 ~iters:3 ~p:2 ~q:2) 4 in
  let a41 = run (Programs.jacobi2d ~n:14 ~iters:3 ~p:4 ~q:1) 4 in
  let a12 = run (Programs.jacobi2d ~n:14 ~iters:3 ~p:1 ~q:2) 2 in
  checkb "2x2 = 4x1" true (Ndarray.approx_equal a22 a41);
  checkb "2x2 = 1x2" true (Ndarray.approx_equal a22 a12)

let test_jacobi1d_converges_correctly () =
  let n = 20 and iters = 6 in
  let r = Driver.run ~nprocs:4 (Driver.compile (Programs.jacobi ~n ~iters)) in
  (* sequential oracle *)
  let u = Array.init (n + 1) (fun i -> float_of_int ((3 * i) mod 17)) in
  for _ = 1 to iters do
    let v = Array.copy u in
    for i = 2 to n - 1 do
      v.(i) <- 0.5 *. (u.(i - 1) +. u.(i + 1))
    done;
    Array.blit v 1 u 1 n
  done;
  let got = Driver.final r "U" in
  for i = 1 to n do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "U(%d)" i) u.(i)
      (Scalar.to_real (Ndarray.get got [| i |]))
  done

let test_irregular_results () =
  let n = 16 in
  let r = Driver.run ~nprocs:4 (Driver.compile (Programs.irregular ~n)) in
  (* oracle: V(i) = mod(i + n/2, n) + 1; U(i) = n+1-i; four time steps *)
  let v i = ((i + (n / 2)) mod n) + 1 in
  let u i = n + 1 - i in
  let b i = float_of_int (3 * i) in
  let a = Array.make (n + 1) 0. and c = Array.make (n + 1) 0. in
  for t = 1 to 4 do
    for i = 1 to n do
      a.(i) <- b (v i) +. float_of_int t
    done;
    for i = 1 to n do
      c.(u i) <- a.(i)
    done
  done;
  let got_a = Driver.final r "A" and got_c = Driver.final r "C" in
  for i = 1 to n do
    Alcotest.(check (float 1e-9)) "A" a.(i) (Scalar.to_real (Ndarray.get got_a [| i |]));
    Alcotest.(check (float 1e-9)) "C" c.(i) (Scalar.to_real (Ndarray.get got_c [| i |]))
  done

let test_heat_convergence () =
  let compiled = Driver.compile (Programs.heat ~n:24 ~tol:0.5) in
  let r4 = Driver.run ~nprocs:4 compiled in
  let r1 = Driver.run ~nprocs:1 compiled in
  (* the reduction-driven DO WHILE must take identical trips everywhere *)
  checkb "deterministic across P" true
    (Ndarray.approx_equal (Driver.final r4 "U") (Driver.final r1 "U"));
  let steps = Scalar.to_int (Driver.final_scalar r4 "STEPS") in
  checkb "converged in a sane number of sweeps" true (steps > 10 && steps < 10000);
  checkb "residual below tolerance" true
    (Scalar.to_real (Driver.final_scalar r4 "ERR") <= 0.5)

let test_dot_product_through_compiler () =
  let r =
    Driver.run ~nprocs:4
      (Driver.compile
         {|
      PROGRAM DP
      REAL X(10), Y(10), S
C$    DISTRIBUTE X(BLOCK)
C$    ALIGN Y(I) WITH X(I)
      FORALL (I = 1:10) X(I) = I
      FORALL (I = 1:10) Y(I) = 11 - I
      S = DOT_PRODUCT(X, Y)
      END
      |})
  in
  let expect = List.fold_left (fun a i -> a +. float_of_int (i * (11 - i))) 0. (List.init 10 (fun i -> i + 1)) in
  Alcotest.(check (float 1e-9)) "dot product" expect
    (Scalar.to_real (Driver.final_scalar r "S"))

let test_fft_butterfly () =
  let n = 32 in
  let r = Driver.run ~nprocs:4 (Driver.compile (Programs.fft_butterfly ~n)) in
  (* oracle for one butterfly stage *)
  let x = Array.init (n + 1) (fun i -> float_of_int ((7 * i) mod 23)) in
  let t2 = Array.init (n + 1) (fun i -> float_of_int ((3 * i) mod 11)) in
  let incrm = n / 4 in
  let expected = Array.copy x in
  for i = 1 to incrm do
    for j = 0 to (n / (2 * incrm)) - 1 do
      expected.(i + (j * incrm * 2) + incrm) <-
        x.(i + (j * incrm * 2)) -. t2.(i + (j * incrm * 2) + incrm)
    done
  done;
  let got = Driver.final r "X" in
  for i = 1 to n do
    Alcotest.(check (float 1e-9))
      (Printf.sprintf "X(%d)" i) expected.(i)
      (Scalar.to_real (Ndarray.get got [| i |]))
  done

(* ------------------------------------------------------------------ *)
(* Kernel specializer equivalence                                      *)
(* ------------------------------------------------------------------ *)

(* An always-true mask forces the general interpreter; without it the
   kernel specializer runs.  Results must be bitwise comparable. *)
let test_kernel_vs_interpreter () =
  let mk masked =
    Printf.sprintf
      {|
      PROGRAM KEQ
      INTEGER, PARAMETER :: N = 33
      INTEGER K
      REAL A(33, 34), W(33), ROW(34)
C$    TEMPLATE T(34)
C$    ALIGN A(I, J) WITH T(J)
C$    ALIGN ROW(J) WITH T(J)
C$    DISTRIBUTE T(BLOCK)
      FORALL (I = 1:N, J = 1:N+1) A(I, J) = MOD(3*I + 5*J, 11) + 0.5
      FORALL (I = 1:N) W(I) = MOD(2*I, 7) + 1
      DO K = 1, 5
        FORALL (J = 2:N) ROW(J) = A(K, J-1) + A(K, J+1)
        FORALL (I = 1:N, J = 2:N%s) A(I, J) = A(I, J) - 0.125*W(I)*ROW(J)
      END DO
      END
|}
      (if masked then ", 1 == 1" else "")
  in
  let run src = Driver.final (Driver.run ~nprocs:4 (Driver.compile src)) "A" in
  let fast = run (mk false) and slow = run (mk true) in
  checkb "kernel = interpreter" true (Ndarray.approx_equal ~eps:0. fast slow)

let prop_kernel_equivalence =
  QCheck.Test.make ~name:"kernel and interpreter agree on random stencils" ~count:25
    QCheck.(quad (int_range 1 3) (int_range (-2) 2) (int_range 1 6) (int_range 1 4))
    (fun (_, b, w, p) ->
      let n = 24 in
      let mk masked =
        Printf.sprintf
          {|
      PROGRAM PKE
      INTEGER, PARAMETER :: N = %d
      REAL X(%d), Y(%d)
C$    TEMPLATE T(%d)
C$    ALIGN X(I) WITH T(I)
C$    ALIGN Y(I) WITH T(I)
C$    DISTRIBUTE T(BLOCK)
      FORALL (I = 1:N) Y(I) = MOD(5*I, 13) + 0.25
      FORALL (I = %d:%d%s) X(I) = %d.0*Y(I%+d) + I
      END
|}
          n n n n (max 1 (1 - b))
          (min n (n - b))
          (if masked then ", 2 > 1" else "")
          w b
      in
      let run src = Driver.final (Driver.run ~nprocs:p (Driver.compile src)) "X" in
      Ndarray.approx_equal ~eps:0. (run (mk false)) (run (mk true)))

(* ------------------------------------------------------------------ *)
(* Emitter and passes                                                  *)
(* ------------------------------------------------------------------ *)

let test_emitter_output_shape () =
  let compiled = Driver.compile (Programs.gauss ~n:16) in
  let text = F90d_ir.Emit_f77.emit_program compiled.Driver.c_ir in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "emitted code mentions %s" needle) true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re text 0); true with Not_found -> false))
    [ "set_BOUND"; "multicast"; "DO K = 1, N"; "set_DAD"; "SPMD node program" ]

let test_emitter_covers_all_primitives () =
  let src =
    {|
      PROGRAM EM
      INTEGER, PARAMETER :: N = 16
      INTEGER S
      REAL A(16), B(16), C(16), R(16)
      INTEGER V(16)
C$    TEMPLATE T(16)
C$    ALIGN A(I) WITH T(I)
C$    ALIGN B(I) WITH T(I)
C$    ALIGN C(I) WITH T(I)
C$    ALIGN V(I) WITH T(I)
C$    DISTRIBUTE T(BLOCK)
      S = 3
      FORALL (I = 1:N) B(I) = I
      FORALL (I = 1:N) V(I) = N + 1 - I
      FORALL (I = 1:N-1) A(I) = B(I+1)
      FORALL (I = 1:N-4) A(I) = B(I+S)
      FORALL (I = 1:7) A(I) = B(2*I+1)
      FORALL (I = 1:N) A(I) = B(V(I))
      FORALL (I = 1:N) C(V(I)) = B(I)
      FORALL (I = 1:N) R(I) = B(I)
      END
|}
  in
  let compiled = Driver.compile src in
  let text = F90d_ir.Emit_f77.emit_program compiled.Driver.c_ir in
  List.iter
    (fun needle ->
      checkb (Printf.sprintf "emits %s" needle) true
        (let re = Str.regexp_string needle in
         try ignore (Str.search_forward re text 0); true with Not_found -> false))
    [
      "overlap_shift"; "temporary_shift"; "precomp_read"; "gather"; "scatter"; "concatenation";
      "schedule1"; "schedule2"; "schedule3";
    ]

let test_shift_union_pass () =
  let src =
    {|
      PROGRAM SU
      REAL A(32), B(32)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 1:32) B(I) = I
      FORALL (I = 1:29) A(I) = B(I+2) + B(I+3)
      END
|}
  in
  let count_shifts flags =
    let compiled = Driver.compile ~flags src in
    let u = snd (List.hd compiled.Driver.c_ir.F90d_ir.Ir.p_units) in
    let n = ref 0 in
    List.iter
      (fun (s : F90d_ir.Ir.stmt) ->
        match s.F90d_ir.Ir.s with
        | F90d_ir.Ir.Forall f ->
            List.iter
              (function F90d_ir.Ir.Overlap_shift _ -> incr n | _ -> ())
              f.F90d_ir.Ir.f_pre
        | _ -> ())
      u.F90d_ir.Ir.u_body;
    !n
  in
  check "union keeps one" 1 (count_shifts F90d_opt.Passes.all_on);
  check "without union: two" 2 (count_shifts F90d_opt.Passes.all_off);
  (* ghost width must cover the widest shift in both cases *)
  let compiled = Driver.compile ~flags:F90d_opt.Passes.all_on src in
  let u = snd (List.hd compiled.Driver.c_ir.F90d_ir.Ir.p_units) in
  checkb "ghost width 3" true
    (List.exists (fun (a, d, _, hi) -> a = "B" && d = 0 && hi = 3) u.F90d_ir.Ir.u_ghosts)

let test_schedule_keys_assigned () =
  let compiled = Driver.compile (Programs.irregular ~n:16) in
  let u = snd (List.hd compiled.Driver.c_ir.F90d_ir.Ir.p_units) in
  let keys = ref 0 in
  let rec walk (s : F90d_ir.Ir.stmt) =
    match s.F90d_ir.Ir.s with
    | F90d_ir.Ir.Forall f ->
        List.iter
          (function
            | F90d_ir.Ir.Gather_read { key = Some _; _ }
            | F90d_ir.Ir.Precomp_read { key = Some _; _ } ->
                incr keys
            | _ -> ())
          f.F90d_ir.Ir.f_pre;
        (match f.F90d_ir.Ir.f_post with
        | Some (F90d_ir.Ir.Scatter_write { key = Some _ })
        | Some (F90d_ir.Ir.Postcomp_write { key = Some _ }) ->
            incr keys
        | _ -> ())
    | F90d_ir.Ir.Do_loop { body; _ } -> List.iter walk body
    | _ -> ()
  in
  List.iter walk u.F90d_ir.Ir.u_body;
  checkb "reusable schedules got keys" true (!keys >= 3)

let prop_alignment_offsets =
  QCheck.Test.make ~name:"aligned offsets: shifted templates agree with the oracle" ~count:25
    QCheck.(quad (int_range 0 3) (int_range 0 3) (int_range 1 4) (bool))
    (fun (ka, kb, p, cyclic) ->
      (* A aligned at T(I+ka), B at T(I+kb); a shifted copy must land like
         the sequential program regardless of the relative offsets *)
      let n = 20 in
      let src =
        Printf.sprintf
          {|
      PROGRAM PAO
      INTEGER, PARAMETER :: N = %d
      REAL A(%d), B(%d)
C$    TEMPLATE T(%d)
C$    ALIGN A(I) WITH T(I + %d)
C$    ALIGN B(I) WITH T(I + %d)
C$    DISTRIBUTE T(%s)
      FORALL (I = 1:N) B(I) = MOD(7*I, 13) + 0.5
      FORALL (I = 1:N-2) A(I) = B(I+2) - B(I)
      END
|}
          n n n (n + 4) ka kb
          (if cyclic then "CYCLIC" else "BLOCK")
      in
      let got = Driver.final (Driver.run ~nprocs:p (Driver.compile src)) "A" in
      let b i = float_of_int ((7 * i) mod 13) +. 0.5 in
      let expected =
        Ndarray.init Scalar.Kreal [| n |] (fun g ->
            if g.(0) <= n - 2 then Scalar.Real (b (g.(0) + 2) -. b g.(0)) else Scalar.Real 0.)
      in
      Ndarray.approx_equal got expected)

let qsuite =
  List.map QCheck_alcotest.to_alcotest [ prop_kernel_equivalence; prop_alignment_offsets ]

let () =
  Alcotest.run "f90d_programs"
    [
      ( "gauss",
        [
          Alcotest.test_case "matches oracle" `Quick test_gauss_matches_oracle;
          Alcotest.test_case "cyclic matches oracle" `Quick test_gauss_cyclic_matches_oracle;
          Alcotest.test_case "cyclic balances load" `Quick test_gauss_cyclic_balances_load;
          Alcotest.test_case "kernel specializer engaged" `Quick test_kernel_specializer_engaged;
          Alcotest.test_case "hand-written matches oracle" `Quick test_gauss_hand_matches_oracle;
          Alcotest.test_case "machine invariance" `Quick test_gauss_machine_invariance;
          Alcotest.test_case "timing shape" `Quick test_gauss_timing_monotone;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "jacobi2d grid invariance" `Quick test_jacobi_grid_invariance;
          Alcotest.test_case "jacobi1d oracle" `Quick test_jacobi1d_converges_correctly;
          Alcotest.test_case "irregular oracle" `Quick test_irregular_results;
          Alcotest.test_case "fft butterfly oracle" `Quick test_fft_butterfly;
          Alcotest.test_case "heat convergence" `Quick test_heat_convergence;
          Alcotest.test_case "dot product" `Quick test_dot_product_through_compiler;
        ] );
      ( "kernel",
        [ Alcotest.test_case "kernel = interpreter (gauss-like)" `Quick test_kernel_vs_interpreter ]
      );
      ( "emitter/passes",
        [
          Alcotest.test_case "emitted shape" `Quick test_emitter_output_shape;
          Alcotest.test_case "all primitives emitted" `Quick test_emitter_covers_all_primitives;
          Alcotest.test_case "shift union" `Quick test_shift_union_pass;
          Alcotest.test_case "schedule keys" `Quick test_schedule_keys_assigned;
        ] );
      ("properties", qsuite);
    ]
