(* The observability layer (lib/obs): exposition-format correctness of
   the metrics registry (name/label validation, float formatting, the
   implicit +Inf bucket, cumulative monotonicity), exact merging of
   concurrent per-domain increments, callback replacement, and the
   structured JSON-lines logger (every record parses as one JSON object,
   levels filter, request ids are unique). *)

module M = F90d_obs.Metrics
module L = F90d_obs.Log

(* ------------------------------------------------------------------ *)
(* Exposition-text helpers                                             *)
(* ------------------------------------------------------------------ *)

let sample_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.length l > 0 && l.[0] <> '#')

(* value of the sample whose "name{labels}" part is exactly [key] *)
let sample text key =
  sample_lines text
  |> List.find_map (fun line ->
         match String.rindex_opt line ' ' with
         | Some sp when String.sub line 0 sp = key ->
             Some (String.sub line (sp + 1) (String.length line - sp - 1))
         | _ -> None)

let sample_exn text key =
  match sample text key with
  | Some v -> v
  | None -> Alcotest.fail ("no sample for " ^ key)

(* ------------------------------------------------------------------ *)
(* Validation                                                          *)
(* ------------------------------------------------------------------ *)

let test_name_validation () =
  List.iter
    (fun n -> Alcotest.(check bool) ("metric ok: " ^ n) true (M.validate_metric_name n))
    [ "f90d_requests_total"; "up"; "_x"; "a:b:c"; "A9_" ];
  List.iter
    (fun n -> Alcotest.(check bool) ("metric bad: " ^ n) false (M.validate_metric_name n))
    [ ""; "9abc"; "a-b"; "a b"; "caf\xc3\xa9"; "a{b}" ];
  List.iter
    (fun n -> Alcotest.(check bool) ("label ok: " ^ n) true (M.validate_label_name n))
    [ "op"; "level"; "_x"; "a_9" ];
  List.iter
    (fun n -> Alcotest.(check bool) ("label bad: " ^ n) false (M.validate_label_name n))
    [ ""; "__reserved"; "9x"; "a:b"; "a-b" ]

let raises name f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_registration_rejects () =
  let r = M.create () in
  raises "bad metric name" (fun () -> M.Counter.v ~registry:r ~help:"h" "9bad");
  raises "bad label name" (fun () ->
      M.Counter.v ~registry:r ~labels:[ ("9x", "v") ] ~help:"h" "c1");
  raises "duplicate label names" (fun () ->
      M.Counter.v ~registry:r ~labels:[ ("a", "1"); ("a", "2") ] ~help:"h" "c2");
  let _ = M.Counter.v ~registry:r ~labels:[ ("op", "run") ] ~help:"h" "c3" in
  raises "duplicate (name, labels)" (fun () ->
      M.Counter.v ~registry:r ~labels:[ ("op", "run") ] ~help:"h" "c3");
  (* same family, distinct labels: fine *)
  let _ = M.Counter.v ~registry:r ~labels:[ ("op", "compile") ] ~help:"h" "c3" in
  raises "kind mismatch" (fun () -> M.Gauge.v ~registry:r ~help:"h" "c3");
  raises "reserved le" (fun () ->
      M.Histogram.v ~registry:r ~labels:[ ("le", "1") ] ~help:"h" "h1");
  raises "empty buckets" (fun () -> M.Histogram.v ~registry:r ~buckets:[||] ~help:"h" "h2");
  raises "non-increasing buckets" (fun () ->
      M.Histogram.v ~registry:r ~buckets:[| 1.; 1. |] ~help:"h" "h3");
  raises "non-finite bucket" (fun () ->
      M.Histogram.v ~registry:r ~buckets:[| 1.; Float.infinity |] ~help:"h" "h4");
  let c = M.Counter.v ~registry:r ~help:"h" "c4" in
  raises "negative increment" (fun () -> M.Counter.inc_float c (-1.))

(* ------------------------------------------------------------------ *)
(* Float formatting                                                    *)
(* ------------------------------------------------------------------ *)

let test_float_formatting () =
  Alcotest.(check string) "integral renders bare" "42" (M.float_str 42.);
  Alcotest.(check string) "zero" "0" (M.float_str 0.);
  Alcotest.(check string) "negative integral" "-7" (M.float_str (-7.));
  Alcotest.(check string) "+Inf" "+Inf" (M.float_str Float.infinity);
  Alcotest.(check string) "-Inf" "-Inf" (M.float_str Float.neg_infinity);
  Alcotest.(check string) "NaN" "NaN" (M.float_str Float.nan);
  (* %.17g round-trips every non-integral double exactly *)
  List.iter
    (fun x ->
      Alcotest.(check bool)
        (Printf.sprintf "round-trip %h" x)
        true
        (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float (float_of_string (M.float_str x)))))
    [ 0.1; 1. /. 3.; 0.30000000000000004; 1e-300; 1.7976931348623157e308; 2.5 ]

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let test_counter_render () =
  let r = M.create () in
  let a = M.Counter.v ~registry:r ~labels:[ ("op", "run") ] ~help:"requests" "t_requests" in
  let b = M.Counter.v ~registry:r ~labels:[ ("op", "compile") ] ~help:"requests" "t_requests" in
  let g = M.Gauge.v ~registry:r ~help:"a gauge" "a_gauge" in
  M.Counter.inc a;
  M.Counter.inc ~by:4 b;
  M.Gauge.set g 2.5;
  let text = M.render ~registry:r () in
  Alcotest.(check string) "labelled sample" "1" (sample_exn text {|t_requests{op="run"}|});
  Alcotest.(check string) "second label set" "4" (sample_exn text {|t_requests{op="compile"}|});
  Alcotest.(check string) "gauge %.17g" "2.5" (sample_exn text "a_gauge");
  (* one HELP/TYPE block per family, and families sorted by name *)
  let help_lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.length l > 6 && String.sub l 0 6 = "# HELP")
  in
  Alcotest.(check int) "one HELP per family" 2 (List.length help_lines);
  Alcotest.(check bool) "families sorted" true
    (help_lines = List.sort compare help_lines);
  (* rendering twice without writes is byte-identical *)
  Alcotest.(check string) "deterministic render" text (M.render ~registry:r ())

let test_histogram_render () =
  let r = M.create () in
  let h = M.Histogram.v ~registry:r ~buckets:[| 0.01; 0.1; 1. |] ~help:"lat" "t_lat" in
  List.iter (M.Histogram.observe h) [ 0.005; 0.05; 0.5; 5. ];
  let text = M.render ~registry:r () in
  Alcotest.(check string) "first bucket" "1" (sample_exn text {|t_lat_bucket{le="0.01"}|});
  Alcotest.(check string) "cumulative" "2" (sample_exn text {|t_lat_bucket{le="0.1"}|});
  Alcotest.(check string) "third" "3" (sample_exn text {|t_lat_bucket{le="1"}|});
  Alcotest.(check string) "+Inf bucket" "4" (sample_exn text {|t_lat_bucket{le="+Inf"}|});
  Alcotest.(check string) "count = +Inf bucket" "4" (sample_exn text "t_lat_count");
  Alcotest.(check bool) "sum"
    true
    (Float.abs (float_of_string (sample_exn text "t_lat_sum") -. 5.555) < 1e-12);
  (* bucket boundaries use the shortest round-tripping decimal *)
  Alcotest.(check bool) "no verbose le" true (sample text {|t_lat_bucket{le="0.010000000000000000208"}|} = None);
  (* cumulative monotonicity across the full default bucket set *)
  let h2 = M.Histogram.v ~registry:r ~help:"lat2" "t_lat2" in
  List.iter (M.Histogram.observe h2) [ 0.0005; 0.003; 0.07; 0.4; 2.; 60. ];
  let text = M.render ~registry:r () in
  let cum =
    sample_lines text
    |> List.filter_map (fun l ->
           match String.rindex_opt l ' ' with
           | Some sp
             when String.length l > 14 && String.sub l 0 14 = "t_lat2_bucket{" ->
               Some (float_of_string (String.sub l (sp + 1) (String.length l - sp - 1)))
           | _ -> None)
  in
  Alcotest.(check int) "bucket count = bounds + Inf" (Array.length M.Histogram.default_buckets + 1)
    (List.length cum);
  Alcotest.(check bool) "monotone" true (List.sort compare cum = cum);
  Alcotest.(check bool) "last is total" true (List.nth cum (List.length cum - 1) = 6.)

let test_label_escaping () =
  let r = M.create () in
  let _ =
    M.Counter.v ~registry:r ~labels:[ ("path", "a\\b\"c\nd") ] ~help:"h" "t_esc"
  in
  let text = M.render ~registry:r () in
  Alcotest.(check string) "escaped label value" "0"
    (sample_exn text {|t_esc{path="a\\b\"c\nd"}|})

let test_callback_replace () =
  let r = M.create () in
  let v = ref 1. in
  M.register_callback ~registry:r ~kind:`Gauge ~help:"h" "t_cb" (fun () -> !v);
  Alcotest.(check string) "callback read at scrape" "1" (sample_exn (M.render ~registry:r ()) "t_cb");
  v := 7.;
  Alcotest.(check string) "scrape sees new value" "7" (sample_exn (M.render ~registry:r ()) "t_cb");
  (* re-registration replaces, never duplicates *)
  M.register_callback ~registry:r ~kind:`Gauge ~help:"h" "t_cb" (fun () -> 99.);
  let text = M.render ~registry:r () in
  Alcotest.(check string) "replaced" "99" (sample_exn text "t_cb");
  Alcotest.(check int) "single sample" 1
    (List.length (List.filter (fun l -> String.length l >= 5 && String.sub l 0 5 = "t_cb ")
                    (sample_lines text)));
  (* a raising callback renders NaN rather than killing the scrape *)
  M.register_callback ~registry:r ~kind:`Gauge ~help:"h" "t_cb" (fun () -> failwith "boom");
  Alcotest.(check string) "raising callback -> NaN" "NaN"
    (sample_exn (M.render ~registry:r ()) "t_cb")

(* ------------------------------------------------------------------ *)
(* Concurrency: merged shards must sum exactly                         *)
(* ------------------------------------------------------------------ *)

let test_concurrent_counter () =
  let r = M.create () in
  let c = M.Counter.v ~registry:r ~help:"h" "t_conc" in
  let per_domain = 25_000 and n_domains = 4 in
  let domains =
    Array.init n_domains (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              M.Counter.inc c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check bool) "exact sum across domains" true
    (M.Counter.value c = float_of_int (per_domain * n_domains));
  Alcotest.(check string) "render agrees"
    (string_of_int (per_domain * n_domains))
    (sample_exn (M.render ~registry:r ()) "t_conc")

let test_concurrent_histogram () =
  let r = M.create () in
  let h = M.Histogram.v ~registry:r ~buckets:[| 0.5 |] ~help:"h" "t_conch" in
  let per_domain = 10_000 and n_domains = 4 in
  let domains =
    Array.init n_domains (fun i ->
        Domain.spawn (fun () ->
            for k = 1 to per_domain do
              (* half below the bound, half above, deterministically *)
              M.Histogram.observe h (if (k + i) mod 2 = 0 then 0.25 else 0.75)
            done))
  in
  Array.iter Domain.join domains;
  let total = float_of_int (per_domain * n_domains) in
  Alcotest.(check bool) "count exact" true (M.Histogram.count h = total);
  let text = M.render ~registry:r () in
  Alcotest.(check string) "low bucket holds half"
    (M.float_str (total /. 2.))
    (sample_exn text {|t_conch_bucket{le="0.5"}|})

(* ------------------------------------------------------------------ *)
(* Structured logging                                                  *)
(* ------------------------------------------------------------------ *)

let with_log_file f =
  let path = Filename.temp_file "f90d-test-obs" ".log" in
  L.set_file path;
  Fun.protect
    ~finally:(fun () ->
      L.set_channel stderr;
      L.set_level L.Warn;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_records path =
  In_channel.with_open_text path In_channel.input_all
  |> String.split_on_char '\n'
  |> List.filter (fun l -> l <> "")
  |> List.map F90d_serve.Json.parse

let field rec_ name = F90d_serve.Json.mem rec_ name

let test_log_records () =
  with_log_file (fun path ->
      L.set_level L.Debug;
      L.info "request"
        [
          ("id", L.S "r1-0");
          ("n", L.I 42);
          ("elapsed_s", L.F 0.1);
          ("ok", L.B true);
          ("msg", L.S "a \"quoted\"\nline");
        ];
      L.error "boom" [];
      match read_records path with
      | [ a; b ] ->
          let str v = Option.bind v F90d_serve.Json.str in
          Alcotest.(check (option string)) "level" (Some "info") (str (field a "level"));
          Alcotest.(check (option string)) "event" (Some "request") (str (field a "event"));
          Alcotest.(check (option string)) "string field" (Some "r1-0") (str (field a "id"));
          Alcotest.(check (option int)) "int field" (Some 42)
            (Option.bind (field a "n") F90d_serve.Json.int);
          Alcotest.(check (option string)) "escaped string" (Some "a \"quoted\"\nline")
            (str (field a "msg"));
          Alcotest.(check bool) "float field round-trips" true
            (Option.bind (field a "elapsed_s") F90d_serve.Json.float = Some 0.1);
          Alcotest.(check bool) "bool field" true
            (field a "ok" = Some (F90d_serve.Json.Bool true));
          (* ISO-8601 UTC timestamp with millisecond precision *)
          (match str (field a "ts") with
          | Some ts ->
              Alcotest.(check bool) ("ts shape: " ^ ts) true
                (String.length ts = 24 && ts.[4] = '-' && ts.[10] = 'T' && ts.[23] = 'Z')
          | None -> Alcotest.fail "no ts");
          Alcotest.(check (option string)) "second record level" (Some "error")
            (str (field b "level"))
      | records -> Alcotest.fail (Printf.sprintf "expected 2 records, got %d" (List.length records)))

let test_log_level_filter () =
  with_log_file (fun path ->
      L.set_level L.Warn;
      L.debug "hidden" [];
      L.info "hidden" [];
      L.warn "kept" [];
      L.error "kept" [];
      Alcotest.(check int) "only warn and error pass" 2 (List.length (read_records path));
      L.set_level L.Error;
      L.warn "hidden" [];
      Alcotest.(check int) "raised threshold" 2 (List.length (read_records path)))

let test_log_level_parse () =
  List.iter
    (fun (s, want) ->
      match L.level_of_string s with
      | Ok l -> Alcotest.(check string) s want (L.level_name l)
      | Error m -> Alcotest.fail m)
    [ ("debug", "debug"); ("INFO", "info"); ("Warning", "warn"); (" error ", "error") ];
  Alcotest.(check bool) "unknown rejected" true
    (match L.level_of_string "loud" with Error _ -> true | Ok _ -> false)

let test_request_ids () =
  let n = 1000 in
  let ids = List.init n (fun _ -> L.next_request_id ()) in
  Alcotest.(check int) "unique" n (List.length (List.sort_uniq compare ids));
  let prefix = Printf.sprintf "r%d-" (Unix.getpid ()) in
  List.iter
    (fun id ->
      Alcotest.(check bool) ("prefix of " ^ id) true
        (String.length id > String.length prefix
        && String.sub id 0 (String.length prefix) = prefix))
    ids

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "name and label validation" `Quick test_name_validation;
          Alcotest.test_case "registration rejects invalid instruments" `Quick
            test_registration_rejects;
          Alcotest.test_case "float formatting (%.17g round-trip)" `Quick test_float_formatting;
          Alcotest.test_case "counter/gauge exposition" `Quick test_counter_render;
          Alcotest.test_case "histogram buckets cumulative with +Inf" `Quick
            test_histogram_render;
          Alcotest.test_case "label value escaping" `Quick test_label_escaping;
          Alcotest.test_case "callbacks: scrape-time, replaceable, NaN on raise" `Quick
            test_callback_replace;
          Alcotest.test_case "concurrent counter merges exactly" `Quick test_concurrent_counter;
          Alcotest.test_case "concurrent histogram merges exactly" `Quick
            test_concurrent_histogram;
        ] );
      ( "log",
        [
          Alcotest.test_case "records are parseable JSON lines" `Quick test_log_records;
          Alcotest.test_case "level filtering" `Quick test_log_level_filter;
          Alcotest.test_case "level parsing" `Quick test_log_level_parse;
          Alcotest.test_case "request ids unique" `Quick test_request_ids;
        ] );
    ]
