open F90d_base
open F90d_machine

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-12))
let checkb = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Model / Topology                                                    *)
(* ------------------------------------------------------------------ *)

let test_transfer_time () =
  let m = Model.ipsc860 in
  checkf "one hop" (m.Model.alpha +. (100. *. m.Model.beta))
    (Model.transfer_time m ~bytes:100 ~hops:1);
  checkf "three hops"
    (m.Model.alpha +. (100. *. m.Model.beta) +. (2. *. m.Model.hop))
    (Model.transfer_time m ~bytes:100 ~hops:3)

let test_hypercube_hops () =
  check "self" 0 (Topology.hops Hypercube ~nprocs:16 5 5);
  check "one bit" 1 (Topology.hops Hypercube ~nprocs:16 0 8);
  check "all bits" 4 (Topology.hops Hypercube ~nprocs:16 0 15);
  check "symmetric" (Topology.hops Hypercube ~nprocs:16 3 12) (Topology.hops Hypercube ~nprocs:16 12 3)

let test_mesh_hops () =
  (* 4x4 mesh: 0 and 5 differ by (1,1) *)
  check "diagonal" 2 (Topology.hops Mesh ~nprocs:16 0 5);
  check "full" 1 (Topology.hops Full ~nprocs:16 0 5)

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_hypercube_validation () =
  (* a 12-node "hypercube" has no geometry: XOR popcounts would report
     the distances of a 16-node cube with corners missing *)
  checkb "validate flags non-pow2" true (Topology.validate Hypercube ~nprocs:12 <> None);
  checkb "validate accepts pow2" true (Topology.validate Hypercube ~nprocs:16 = None);
  checkb "mesh any size" true (Topology.validate Mesh ~nprocs:12 = None);
  checkb "full any size" true (Topology.validate Full ~nprocs:12 = None);
  (match Engine.config ~topology:Hypercube 12 with
  | _ -> Alcotest.fail "expected Diag.Error for a 12-node hypercube"
  | exception F90d_base.Diag.Error (_, msg) ->
      checkb "names the size" true (contains_sub msg "12-node hypercube"));
  ignore (Engine.config ~topology:Hypercube 16)

let test_embedding_identity_cases () =
  checkb "non-pow2 grid" true (Topology.grid_embedding Hypercube ~nprocs:12 [| 3; 4 |] = None);
  checkb "full" true (Topology.grid_embedding Full ~nprocs:16 [| 4; 4 |] = None);
  match Topology.grid_embedding Hypercube ~nprocs:8 [| 8 |] with
  | None -> Alcotest.fail "expected gray embedding"
  | Some phys ->
      (* a ring embedding: consecutive ranks at distance 1 *)
      for r = 0 to 6 do
        check "ring step" 1 (Topology.hops Hypercube ~nprocs:8 phys.(r) phys.(r + 1))
      done

(* ------------------------------------------------------------------ *)
(* Engine                                                              *)
(* ------------------------------------------------------------------ *)

let test_ping_pong () =
  let cfg = Engine.config ~model:Model.ipsc860 2 in
  let report =
    Engine.run cfg (fun ctx ->
        match Engine.rank ctx with
        | 0 ->
            Engine.send ctx ~dest:1 ~tag:7 (Message.Scalar (Scalar.Int 41));
            let m = Engine.recv ctx ~src:1 ~tag:8 in
            Scalar.to_int (Message.scalar m)
        | _ ->
            let m = Engine.recv ctx ~src:0 ~tag:7 in
            Engine.send ctx ~dest:0 ~tag:8 (Message.Scalar (Scalar.Int (Scalar.to_int (Message.scalar m) + 1)));
            0)
  in
  check "roundtrip value" 42 report.Engine.results.(0);
  check "messages" 2 report.Engine.stats.Stats.messages;
  check "bytes" 16 report.Engine.stats.Stats.bytes;
  (* two sequential 8-byte sends; elapsed = 2 * (alpha + 8*beta) *)
  let m = Model.ipsc860 in
  checkf "elapsed" (2. *. (m.Model.alpha +. (8. *. m.Model.beta))) report.Engine.elapsed

let test_clock_semantics () =
  (* receiver that is already late pays no extra wait *)
  let cfg = Engine.config ~model:Model.ipsc860 2 in
  let report =
    Engine.run cfg (fun ctx ->
        match Engine.rank ctx with
        | 0 ->
            Engine.send ctx ~dest:1 ~tag:1 (Message.Scalar (Scalar.Real 1.));
            Engine.time ctx
        | _ ->
            Engine.advance ctx 1.0;
            let _ = Engine.recv ctx ~src:0 ~tag:1 in
            Engine.time ctx)
  in
  checkf "late receiver keeps its clock" 1.0 report.Engine.results.(1);
  checkb "sender finished before receiver" true (report.Engine.results.(0) < 1.0)

let test_fifo_order () =
  let cfg = Engine.config 2 in
  let report =
    Engine.run cfg (fun ctx ->
        match Engine.rank ctx with
        | 0 ->
            List.iter
              (fun i -> Engine.send ctx ~dest:1 ~tag:3 (Message.Scalar (Scalar.Int i)))
              [ 1; 2; 3 ];
            []
        | _ ->
            List.map
              (fun _ -> Scalar.to_int (Message.scalar (Engine.recv ctx ~src:0 ~tag:3)))
              [ (); (); () ])
  in
  Alcotest.(check (list int)) "FIFO per (src,tag)" [ 1; 2; 3 ] report.Engine.results.(1)

let test_tag_matching () =
  (* receives in the opposite order of the sends: matching is by tag *)
  let cfg = Engine.config 2 in
  let report =
    Engine.run cfg (fun ctx ->
        match Engine.rank ctx with
        | 0 ->
            Engine.send ctx ~dest:1 ~tag:1 (Message.Scalar (Scalar.Int 10));
            Engine.send ctx ~dest:1 ~tag:2 (Message.Scalar (Scalar.Int 20));
            (0, 0)
        | _ ->
            let b = Scalar.to_int (Message.scalar (Engine.recv ctx ~src:0 ~tag:2)) in
            let a = Scalar.to_int (Message.scalar (Engine.recv ctx ~src:0 ~tag:1)) in
            (a, b))
  in
  Alcotest.(check (pair int int)) "out-of-order tags" (10, 20) report.Engine.results.(1)

let test_deadlock () =
  let cfg = Engine.config 2 in
  match
    Engine.run cfg (fun ctx -> ignore (Engine.recv ctx ~src:(1 - Engine.rank ctx) ~tag:9))
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock _ -> ()

let test_deadlock_lists_unwaited_handles () =
  (* a rank stuck with a split-phase handle outstanding: the diagnostic
     must name the issued-but-unwaited channel, the usual sign of a wait
     sunk past the point that should have consumed it *)
  let cfg = Engine.config 2 in
  match
    Engine.run cfg (fun ctx ->
        match Engine.rank ctx with
        | 0 -> ignore (Engine.recv ctx ~src:1 ~tag:5)
        | _ ->
            Engine.set_stmt ctx ~sid:42 ~loc:F90d_base.Loc.none;
            let _h = Engine.irecv ctx ~src:0 ~tag:7 in
            ignore (Engine.recv ctx ~src:0 ~tag:5))
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      let has s =
        try
          ignore (Str.search_forward (Str.regexp_string s) msg 0);
          true
        with Not_found -> false
      in
      checkb "names the unwaited channel" true (has "issued-unwaited (src=0,tag=7");
      checkb "names the issuing statement" true (has "issued at stmt 42")

let test_exception_propagation () =
  let cfg = Engine.config 2 in
  match
    Engine.run cfg (fun ctx -> if Engine.rank ctx = 1 then failwith "node crash" else ())
  with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure msg -> Alcotest.(check string) "message" "node crash" msg

let test_all_to_all () =
  let p = 8 in
  let cfg = Engine.config ~topology:Hypercube p in
  let report =
    Engine.run cfg (fun ctx ->
        let me = Engine.rank ctx in
        for d = 0 to p - 1 do
          if d <> me then Engine.send ctx ~dest:d ~tag:me (Message.Scalar (Scalar.Int (100 + me)))
        done;
        let acc = ref 0 in
        for s = 0 to p - 1 do
          if s <> me then
            acc := !acc + Scalar.to_int (Message.scalar (Engine.recv ctx ~src:s ~tag:s))
        done;
        !acc)
  in
  let expected me = (7 * 100) + (((p - 1) * p / 2) - me) in
  Array.iteri (fun me v -> check "sum" (expected me) v) report.Engine.results;
  check "messages" (p * (p - 1)) report.Engine.stats.Stats.messages

let test_charges () =
  let cfg = Engine.config ~model:Model.ncube2 1 in
  let report =
    Engine.run cfg (fun ctx ->
        Engine.charge_flops ctx 1000;
        Engine.charge_iops ctx 100;
        Engine.charge_copy_bytes ctx 10;
        Engine.time ctx)
  in
  let m = Model.ncube2 in
  checkf "charged"
    ((1000. *. m.Model.flop) +. (100. *. m.Model.iop) +. (10. *. m.Model.memcpy))
    report.Engine.results.(0)

(* ------------------------------------------------------------------ *)
(* Domain-parallel engine                                              *)
(* ------------------------------------------------------------------ *)

let test_parallel_matches_sequential () =
  (* an all-to-all with rank-dependent compute: every clock, stat and
     result must be bit-identical to the sequential engine *)
  let p = 8 in
  let program ctx =
    let me = Engine.rank ctx in
    Engine.charge_flops ctx (100 * (me + 1));
    for d = 0 to p - 1 do
      if d <> me then Engine.send ctx ~dest:d ~tag:me (Message.Scalar (Scalar.Int (100 + me)))
    done;
    let acc = ref 0 in
    for s = 0 to p - 1 do
      if s <> me then acc := !acc + Scalar.to_int (Message.scalar (Engine.recv ctx ~src:s ~tag:s))
    done;
    !acc
  in
  let cfg () = Engine.config ~model:Model.ipsc860 ~topology:Hypercube p in
  let seq = Engine.run (cfg ()) program in
  let par = Engine.run_parallel ~jobs:4 (cfg ()) program in
  Alcotest.(check (array int)) "results" seq.Engine.results par.Engine.results;
  Alcotest.(check (array (float 0.))) "clocks" seq.Engine.clocks par.Engine.clocks;
  checkf "elapsed" seq.Engine.elapsed par.Engine.elapsed;
  check "messages" seq.Engine.stats.Stats.messages par.Engine.stats.Stats.messages;
  checkb "per-tag" true (Stats.per_tag seq.Engine.stats = Stats.per_tag par.Engine.stats);
  Alcotest.(check (float 0.)) "recv_wait" seq.Engine.stats.Stats.recv_wait
    par.Engine.stats.Stats.recv_wait

let test_parallel_fifo_and_tags () =
  let cfg = Engine.config 2 in
  let report =
    Engine.run_parallel ~jobs:2 cfg (fun ctx ->
        match Engine.rank ctx with
        | 0 ->
            List.iter
              (fun i -> Engine.send ctx ~dest:1 ~tag:3 (Message.Scalar (Scalar.Int i)))
              [ 1; 2; 3 ];
            Engine.send ctx ~dest:1 ~tag:9 (Message.Scalar (Scalar.Int 99));
            []
        | _ ->
            let nine = Scalar.to_int (Message.scalar (Engine.recv ctx ~src:0 ~tag:9)) in
            nine
            :: List.map
                 (fun _ -> Scalar.to_int (Message.scalar (Engine.recv ctx ~src:0 ~tag:3)))
                 [ (); (); () ])
  in
  Alcotest.(check (list int)) "tag 9 first, then FIFO" [ 99; 1; 2; 3 ] report.Engine.results.(1)

let test_parallel_deadlock () =
  let cfg = Engine.config 3 in
  match
    Engine.run_parallel ~jobs:3 cfg (fun ctx ->
        ignore (Engine.recv ctx ~src:(Engine.rank ctx) ~tag:9))
  with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock _ -> ()

let test_parallel_exception () =
  let cfg = Engine.config 4 in
  match
    Engine.run_parallel ~jobs:2 cfg (fun ctx ->
        if Engine.rank ctx = 2 then failwith "node crash" else ())
  with
  | _ -> Alcotest.fail "expected failure"
  | exception Failure msg -> Alcotest.(check string) "message" "node crash" msg

let test_parallel_jobs_one_is_sequential () =
  let cfg = Engine.config 2 in
  let r =
    Engine.run_parallel ~jobs:1 cfg (fun ctx ->
        if Engine.rank ctx = 0 then
          Engine.send ctx ~dest:1 ~tag:1 (Message.Scalar (Scalar.Int 5));
        if Engine.rank ctx = 1 then
          Scalar.to_int (Message.scalar (Engine.recv ctx ~src:0 ~tag:1))
        else 0)
  in
  check "value" 5 r.Engine.results.(1)

let prop_parallel_matches_sequential =
  QCheck.Test.make ~name:"run_parallel: report bit-identical to run" ~count:40
    (* log2 of the machine size: hypercubes only exist at powers of two *)
    QCheck.(triple (int_range 0 3) (int_range 0 30) (int_range 2 4))
    (fun (logp, work, jobs) ->
      let p = 1 lsl logp in
      let program ctx =
        let me = Engine.rank ctx in
        Engine.charge_flops ctx (work * (1 + me));
        if me > 0 then begin
          Engine.send ctx ~dest:0 ~tag:1 (Message.Scalar (Scalar.Int me));
          0
        end
        else begin
          let acc = ref 0 in
          for s = 1 to p - 1 do
            acc := !acc + Scalar.to_int (Message.scalar (Engine.recv ctx ~src:s ~tag:1))
          done;
          !acc
        end
      in
      let cfg () = Engine.config ~model:Model.ipsc860 ~topology:Topology.Hypercube p in
      let seq = Engine.run (cfg ()) program in
      let par = Engine.run_parallel ~jobs (cfg ()) program in
      seq.Engine.results = par.Engine.results
      && seq.Engine.clocks = par.Engine.clocks
      && seq.Engine.elapsed = par.Engine.elapsed
      && Stats.per_tag seq.Engine.stats = Stats.per_tag par.Engine.stats)

let prop_arrival_monotone =
  QCheck.Test.make ~name:"elapsed >= each processor clock >= 0" ~count:100
    QCheck.(pair (int_range 0 3) (int_range 0 50))
    (fun (logp, work) ->
      let p = 1 lsl logp in
      let cfg = Engine.config ~model:Model.ipsc860 ~topology:Topology.Hypercube p in
      let report =
        Engine.run cfg (fun ctx ->
            Engine.charge_flops ctx (work * (1 + Engine.rank ctx));
            if Engine.rank ctx > 0 then
              Engine.send ctx ~dest:0 ~tag:1 (Message.Scalar (Scalar.Int 1))
            else
              for s = 1 to p - 1 do
                ignore (Engine.recv ctx ~src:s ~tag:1)
              done)
      in
      Array.for_all (fun c -> c >= 0. && c <= report.Engine.elapsed) report.Engine.clocks)

(* ------------------------------------------------------------------ *)
(* Scale: ready-queue scheduler, sparse mailboxes, log-depth cascades  *)
(* ------------------------------------------------------------------ *)

module Rt = F90d_runtime

let payload_int = function
  | Message.Scalar sc -> Scalar.to_int sc
  | _ -> Alcotest.fail "expected scalar payload"

(* the communication shape of gauss's pivot exchange: a broadcast down a
   binomial tree and an allreduce back, with rank-skewed local compute *)
let collective_program p ctx =
  let rctx = Rt.Rctx.make ctx (F90d_dist.Grid.make [| p |]) in
  let team = Rt.Collectives.team_all rctx in
  let me = Engine.rank ctx in
  Engine.charge_flops ctx (7 * (me mod 13));
  let v = payload_int (Rt.Collectives.broadcast rctx team ~root:0 (Message.Scalar (Scalar.Int 4242))) in
  let s =
    payload_int
      (Rt.Collectives.allreduce rctx team
         ~combine:(Rt.Redop.payload Rt.Redop.Sum)
         (Message.Scalar (Scalar.Int (me + 1))))
  in
  (v, s)

let test_large_p_bit_identity () =
  (* the scheduler rewrite changes fiber visit order; at P=1024 the
     sequential and 4-worker reports must still agree bit for bit *)
  let p = 1024 in
  let cfg () = Engine.config ~model:Model.ipsc860 ~topology:Hypercube p in
  let seq = Engine.run (cfg ()) (collective_program p) in
  let par = Engine.run_parallel ~jobs:4 (cfg ()) (collective_program p) in
  let expect = (4242, p * (p + 1) / 2) in
  Array.iter (fun r -> checkb "values" true (r = expect)) seq.Engine.results;
  checkb "results" true (seq.Engine.results = par.Engine.results);
  checkb "clocks" true (seq.Engine.clocks = par.Engine.clocks);
  checkf "elapsed" seq.Engine.elapsed par.Engine.elapsed;
  check "messages" seq.Engine.stats.Stats.messages par.Engine.stats.Stats.messages;
  checkb "per-tag" true (Stats.per_tag seq.Engine.stats = Stats.per_tag par.Engine.stats)

let test_mailbox_sparse_after_broadcast () =
  (* drained channels must leave the mailbox table entirely: after the
     cascades complete, every rank's live-channel count is back to 0 *)
  let p = 256 in
  let cfg = Engine.config ~model:Model.ipsc860 ~topology:Hypercube p in
  let report =
    Engine.run cfg (fun ctx ->
        ignore (collective_program p ctx);
        Engine.live_channels ctx)
  in
  Array.iteri (fun r live -> check (Printf.sprintf "rank %d live channels" r) 0 live) report.Engine.results

let test_broadcast_log_depth () =
  (* a binomial broadcast's critical path is exactly log2 P back-to-back
     message times: parent and child always differ in one address bit, so
     on Full (and on a hypercube) every tree edge is one hop *)
  let m = Model.ipsc860 in
  let t_msg = m.Model.alpha +. (8. *. m.Model.beta) in
  List.iter
    (fun p ->
      let cfg = Engine.config ~model:Model.ipsc860 p in
      let report =
        Engine.run cfg (fun ctx ->
            let rctx = Rt.Rctx.make ctx (F90d_dist.Grid.make [| p |]) in
            let team = Rt.Collectives.team_all rctx in
            ignore
              (Rt.Collectives.broadcast rctx team ~root:0 (Message.Scalar (Scalar.Real 1.0))))
      in
      let depth = Util.ilog2 p in
      checkf (Printf.sprintf "depth at P=%d" p)
        (float_of_int depth *. t_msg)
        report.Engine.elapsed;
      check (Printf.sprintf "messages at P=%d" p) (p - 1) report.Engine.stats.Stats.messages)
    [ 16; 256; 4096 ]

let test_deadlock_truncated () =
  (* at P=64 the report must stay readable: 8 ranks detailed, the other
     56 summarized in one suffix line *)
  let count_sub hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i acc =
      if i + nn > nh then acc
      else go (i + 1) (if String.sub hay i nn = needle then acc + 1 else acc)
    in
    go 0 0
  in
  let p = 64 in
  let cfg = Engine.config p in
  (match Engine.run cfg (fun ctx -> ignore (Engine.recv ctx ~src:(Engine.rank ctx) ~tag:9)) with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      check "detailed ranks" 8 (count_sub msg "waiting on");
      checkb "elision suffix" true (contains_sub msg "and 56 more blocked ranks"));
  (* small machines keep the full detail *)
  let cfg4 = Engine.config 4 in
  match Engine.run cfg4 (fun ctx -> ignore (Engine.recv ctx ~src:(Engine.rank ctx) ~tag:9)) with
  | _ -> Alcotest.fail "expected deadlock"
  | exception Engine.Deadlock msg ->
      check "all ranks detailed" 4 (count_sub msg "waiting on");
      checkb "no elision" true (not (contains_sub msg "more blocked ranks"))

let qsuite =
  List.map QCheck_alcotest.to_alcotest
    [ prop_arrival_monotone; prop_parallel_matches_sequential ]

let () =
  Alcotest.run "f90d_machine"
    [
      ( "model",
        [
          Alcotest.test_case "transfer_time" `Quick test_transfer_time;
          Alcotest.test_case "hypercube hops" `Quick test_hypercube_hops;
          Alcotest.test_case "mesh/full hops" `Quick test_mesh_hops;
          Alcotest.test_case "hypercube size validation" `Quick test_hypercube_validation;
          Alcotest.test_case "embeddings" `Quick test_embedding_identity_cases;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ping-pong" `Quick test_ping_pong;
          Alcotest.test_case "clock semantics" `Quick test_clock_semantics;
          Alcotest.test_case "FIFO order" `Quick test_fifo_order;
          Alcotest.test_case "tag matching" `Quick test_tag_matching;
          Alcotest.test_case "deadlock detection" `Quick test_deadlock;
          Alcotest.test_case "deadlock lists unwaited handles" `Quick
            test_deadlock_lists_unwaited_handles;
          Alcotest.test_case "exception propagation" `Quick test_exception_propagation;
          Alcotest.test_case "all-to-all" `Quick test_all_to_all;
          Alcotest.test_case "compute charges" `Quick test_charges;
        ] );
      ( "parallel engine",
        [
          Alcotest.test_case "bit-identical report" `Quick test_parallel_matches_sequential;
          Alcotest.test_case "FIFO and tag matching" `Quick test_parallel_fifo_and_tags;
          Alcotest.test_case "deadlock detection" `Quick test_parallel_deadlock;
          Alcotest.test_case "exception propagation" `Quick test_parallel_exception;
          Alcotest.test_case "jobs=1 falls back" `Quick test_parallel_jobs_one_is_sequential;
        ] );
      ( "scale",
        [
          Alcotest.test_case "bit-identical at P=1024" `Quick test_large_p_bit_identity;
          Alcotest.test_case "mailboxes drain to empty" `Quick test_mailbox_sparse_after_broadcast;
          Alcotest.test_case "broadcast depth is log2 P" `Quick test_broadcast_log_depth;
          Alcotest.test_case "deadlock report truncation" `Quick test_deadlock_truncated;
        ] );
      ("properties", qsuite);
    ]
