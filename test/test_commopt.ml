(* The communication optimization passes: loop-invariant hoisting and
   cross-statement coalescing.  Covers the legality rules (when hoisting
   must refuse), the message-count wins, bit-identical results and
   traces, the replica cache on Gaussian elimination, and the
   per-statement profile reconciliation when batches split their bytes
   back to member statements. *)

open F90d
open F90d_machine
open F90d_opt
open F90d_ir

let checkb = Alcotest.(check bool)
let nd_eq = F90d_base.Ndarray.equal

let hoist_only = { Passes.all_off with Passes.hoist_comm = true }
let coalesce_only = { Passes.all_off with Passes.coalesce = true }

(* ------------------------------------------------------------------ *)
(* IR inspection helpers                                               *)
(* ------------------------------------------------------------------ *)

let rec stmt_fold f acc (s : Ir.stmt) =
  let acc = f acc s in
  match s.Ir.s with
  | Ir.Do_loop { body; _ } | Ir.While_loop { body; _ } ->
      List.fold_left (stmt_fold f) acc body
  | Ir.If_block { arms; els } ->
      let acc = List.fold_left (fun a (_, b) -> List.fold_left (stmt_fold f) a b) acc arms in
      List.fold_left (stmt_fold f) acc els
  | _ -> acc

let ir_fold f acc (ir : Ir.program_ir) =
  List.fold_left
    (fun acc (_, u) -> List.fold_left (stmt_fold f) acc u.Ir.u_body)
    acc ir.Ir.p_units

let comm_blocks ir =
  ir_fold
    (fun acc s -> match s.Ir.s with Ir.Comm_block { cb_members; _ } -> cb_members :: acc | _ -> acc)
    [] ir

let comm_batches ir =
  ir_fold
    (fun acc s ->
      match s.Ir.s with
      | Ir.Forall f ->
          List.filter_map
            (function Ir.Comm_batch members -> Some members | _ -> None)
            f.Ir.f_pre
          @ acc
      | _ -> acc)
    [] ir

let messages ?(nprocs = 4) ?jobs ?(trace = false) compiled =
  Driver.run ?jobs ~trace ~collect_finals:true ~model:Model.ipsc860 ~nprocs compiled

(* ------------------------------------------------------------------ *)
(* Hoisting: the positive case                                         *)
(* ------------------------------------------------------------------ *)

let preamble =
  {|
      PROGRAM HOISTT
      INTEGER, PARAMETER :: N = 48
      REAL A(48), B(48)
      INTEGER T, U(48)
C$    TEMPLATE TP(48)
C$    ALIGN A(I) WITH TP(I)
C$    ALIGN B(I) WITH TP(I)
C$    ALIGN U(I) WITH TP(I)
C$    DISTRIBUTE TP(BLOCK)
      FORALL (I = 1:N) A(I) = MOD(3*I, 17)
      FORALL (I = 1:N) B(I) = 0.0
      FORALL (I = 1:N) U(I) = N + 1 - I
|}

let wrap body = preamble ^ body ^ "\n      END\n"

let invariant_loop =
  wrap {|      DO T = 1, 10
        FORALL (I = 2:N-1) B(I) = B(I) + 0.5*(A(I-1) + A(I+1))
      END DO|}

let test_hoist_happens () =
  let opt = Driver.compile ~flags:hoist_only invariant_loop in
  let plain = Driver.compile ~flags:Passes.all_off invariant_loop in
  checkb "a Comm_block pre-header exists" true (comm_blocks opt.Driver.c_ir <> []);
  let r_opt = messages opt and r_plain = messages plain in
  checkb "hoisting strictly reduces messages" true
    (r_opt.Driver.stats.Stats.messages < r_plain.Driver.stats.Stats.messages);
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"))

let test_hoist_zero_trip_loop () =
  (* the pre-header guard must suppress the hoisted comms entirely: the
     hoisted and plain runs communicate exactly the same (finals gather
     only) *)
  let src =
    wrap {|      DO T = 5, 1
        FORALL (I = 2:N-1) B(I) = B(I) + A(I+1)
      END DO|}
  in
  let opt = Driver.compile ~flags:hoist_only src in
  checkb "hoisted (sanity)" true (comm_blocks opt.Driver.c_ir <> []);
  let r = messages opt in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off src) in
  Alcotest.(check int) "zero-trip loop adds no messages"
    r_plain.Driver.stats.Stats.messages r.Driver.stats.Stats.messages;
  checkb "finals bit-identical" true (nd_eq (Driver.final r "B") (Driver.final r_plain "B"))

(* ------------------------------------------------------------------ *)
(* Hoisting: refusal cases                                             *)
(* ------------------------------------------------------------------ *)

let refuses src =
  let opt = Driver.compile ~flags:hoist_only src in
  comm_blocks opt.Driver.c_ir = []

let test_refuse_source_written () =
  (* A is assigned inside the loop: its shift must stay inside *)
  checkb "refuses: source array written in loop" true
    (refuses
       (wrap
          {|      DO T = 1, 10
        FORALL (I = 2:N-1) B(I) = A(I-1) + A(I+1)
        FORALL (I = 1:N) A(I) = A(I) + 1.0
      END DO|}))

let test_refuse_scatter_write () =
  (* A written through an indirection lhs (scatter write): still a write *)
  checkb "refuses: source written via scatter" true
    (refuses
       (wrap
          {|      DO T = 1, 10
        FORALL (I = 2:N-1) B(I) = A(I-1) + A(I+1)
        FORALL (I = 1:N) A(U(I)) = B(I)
      END DO|}))

let test_refuse_write_under_nested_if () =
  (* the write is conditionally executed, nested two levels down *)
  checkb "refuses: source written under nested IF" true
    (refuses
       (wrap
          {|      DO T = 1, 10
        FORALL (I = 2:N-1) B(I) = A(I-1) + A(I+1)
        IF (T .GT. 3) THEN
          IF (T .LT. 8) THEN
            FORALL (I = 1:N) A(I) = B(I)
          END IF
        END IF
      END DO|}))

let test_refuse_loop_variant_amount () =
  (* shift amount depends on the loop variable: not invariant *)
  let src =
    wrap {|      DO T = 1, 3
        FORALL (I = 1:N-3) B(I) = A(I+T)
      END DO|}
  in
  checkb "refuses: loop-variant shift amount" true (refuses src);
  (* and the program still runs correctly with the pass on *)
  let r_opt = messages (Driver.compile ~flags:hoist_only src) in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off src) in
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"))

(* ------------------------------------------------------------------ *)
(* Coalescing: batch formation and determinism                         *)
(* ------------------------------------------------------------------ *)

let coalesce_src =
  wrap
    {|      FORALL (I = 1:N-1) B(I) = A(I+1)
      FORALL (I = 1:N-1) U(I) = U(I+1)|}

let test_coalesce_batches () =
  let opt = Driver.compile ~flags:coalesce_only coalesce_src in
  (match comm_batches opt.Driver.c_ir with
  | [ members ] -> Alcotest.(check int) "batch of two" 2 (List.length members)
  | l -> Alcotest.failf "expected one Comm_batch, found %d" (List.length l));
  let plain = Driver.compile ~flags:Passes.all_off coalesce_src in
  let r_opt = messages opt and r_plain = messages plain in
  checkb "coalescing strictly reduces messages" true
    (r_opt.Driver.stats.Stats.messages < r_plain.Driver.stats.Stats.messages);
  checkb "B bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"));
  checkb "U bit-identical" true (nd_eq (Driver.final r_opt "U") (Driver.final r_plain "U"))

let test_coalesce_refused_when_interleaved_write () =
  (* the second forall reads A after the first wrote it: no batching *)
  let src =
    wrap {|      FORALL (I = 1:N-1) A(I) = B(I+1)
      FORALL (I = 1:N-1) U(I) = A(I+1)|}
  in
  let opt = Driver.compile ~flags:coalesce_only src in
  checkb "no batch formed" true (comm_batches opt.Driver.c_ir = []);
  let r_opt = messages opt in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off src) in
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "U") (Driver.final r_plain "U"))

let test_coalesce_trace_parallel_identical () =
  (* batched messages must not disturb engine determinism: the full
     trace is byte-identical between the sequential engine and 4 worker
     domains *)
  let compiled = Driver.compile ~flags:coalesce_only coalesce_src in
  let chrome r =
    match r.Driver.trace with
    | Some tr -> F90d_trace.Trace.to_chrome_json tr
    | None -> Alcotest.fail "tracing was on"
  in
  let seq = messages ~trace:true compiled in
  let par = messages ~trace:true ~jobs:4 compiled in
  checkb "batched traces byte-identical seq vs --jobs 4" true (chrome seq = chrome par)

(* ------------------------------------------------------------------ *)
(* The replica cache on Gaussian elimination                           *)
(* ------------------------------------------------------------------ *)

let test_gauss_message_reduction () =
  let n = 32 in
  let src = Programs.gauss ~n in
  let r_on = messages ~nprocs:2 (Driver.compile ~flags:Passes.all_on src) in
  let r_off = messages ~nprocs:2 (Driver.compile ~flags:Passes.all_off src) in
  let m_on = r_on.Driver.stats.Stats.messages
  and m_off = r_off.Driver.stats.Stats.messages in
  checkb
    (Printf.sprintf "gauss messages drop >= 20%% (%d -> %d)" m_off m_on)
    true
    (float_of_int m_on <= 0.8 *. float_of_int m_off);
  checkb "gauss simulated time improves" true (r_on.Driver.elapsed < r_off.Driver.elapsed);
  checkb "gauss finals bit-identical" true (nd_eq (Driver.final r_on "A") (Driver.final r_off "A"));
  let r_par = messages ~nprocs:2 ~jobs:4 (Driver.compile ~flags:Passes.all_on src) in
  checkb "gauss parallel engine bit-identical" true
    (nd_eq (Driver.final r_on "A") (Driver.final r_par "A")
    && r_on.Driver.elapsed = r_par.Driver.elapsed)

let test_replica_cache_invalidation () =
  (* the multicast source is overwritten between repeats: the cache must
     miss and the values stay correct (vs the passes-off run) *)
  let src =
    wrap
      {|      DO T = 1, 4
        FORALL (I = 1:N) B(I) = B(I) + A(3)
        FORALL (I = 1:N) A(I) = A(I) + 1.0
      END DO|}
  in
  let r_on = messages (Driver.compile ~flags:Passes.all_on src) in
  let r_off = messages (Driver.compile ~flags:Passes.all_off src) in
  checkb "invalidated cache still bit-identical" true
    (nd_eq (Driver.final r_on "B") (Driver.final r_off "B"))

(* ------------------------------------------------------------------ *)
(* Profile reconciliation with batches in flight                       *)
(* ------------------------------------------------------------------ *)

let test_profile_reconciles_with_batches () =
  let compiled = Driver.compile ~flags:Passes.all_on coalesce_src in
  let r = messages ~trace:true compiled in
  let tr = match r.Driver.trace with Some t -> t | None -> Alcotest.fail "no trace" in
  let rows = F90d_trace.Analyze.per_stmt_profile tr in
  (match comm_batches compiled.Driver.c_ir with
  | [] -> Alcotest.fail "expected a batch in the optimized IR"
  | _ -> ());
  let msgs =
    List.fold_left (fun a (s : F90d_trace.Analyze.srow) -> a + s.F90d_trace.Analyze.s_msgs) 0 rows
  in
  let bytes =
    List.fold_left (fun a (s : F90d_trace.Analyze.srow) -> a + s.F90d_trace.Analyze.s_bytes) 0
      rows
  in
  Alcotest.(check int) "profile messages = Stats" r.Driver.stats.Stats.messages msgs;
  Alcotest.(check int) "profile bytes = Stats (batch bytes split to members)"
    r.Driver.stats.Stats.bytes bytes;
  (* both batch member statements are attributed traffic *)
  let batch_sids =
    List.concat_map (List.map snd) (comm_batches compiled.Driver.c_ir)
    |> List.sort_uniq compare
  in
  List.iter
    (fun sid ->
      let row =
        List.find_opt (fun (s : F90d_trace.Analyze.srow) -> s.F90d_trace.Analyze.s_sid = sid) rows
      in
      match row with
      | Some s -> checkb "member sid has bytes" true (s.F90d_trace.Analyze.s_bytes > 0)
      | None -> Alcotest.failf "batch member sid %d missing from profile" sid)
    batch_sids

(* ------------------------------------------------------------------ *)
(* Split-phase communication and lookahead (pass 6)                    *)
(* ------------------------------------------------------------------ *)

let split_only = { Passes.all_off with Passes.split_comm = true }
let split_la = { Passes.all_off with Passes.split_comm = true; Passes.lookahead = true }

let comm_issues ir =
  ir_fold (fun acc s -> match s.Ir.s with Ir.Comm_issue sp -> sp :: acc | _ -> acc) [] ir

let comm_waits ir =
  ir_fold (fun acc s -> match s.Ir.s with Ir.Comm_wait sp -> sp :: acc | _ -> acc) [] ir

let has_guard p ir =
  List.exists (fun (sp : Ir.split) -> p sp.Ir.sp_guard) (comm_issues ir)

let test_split_happens () =
  (* the multicast's issue can cross the preceding comm-free FORALL *)
  let src =
    wrap {|      FORALL (I = 1:N) B(I) = 2.0*A(I)
      FORALL (I = 1:N) B(I) = B(I) + A(3)|}
  in
  let opt = Driver.compile ~flags:split_only src in
  checkb "Comm_issue present" true (comm_issues opt.Driver.c_ir <> []);
  Alcotest.(check int) "every issue has its wait"
    (List.length (comm_issues opt.Driver.c_ir))
    (List.length (comm_waits opt.Driver.c_ir));
  let r_opt = messages opt in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off src) in
  Alcotest.(check int) "splitting moves, never adds, messages"
    r_plain.Driver.stats.Stats.messages r_opt.Driver.stats.Stats.messages;
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"))

let test_split_refuse_intervening_write () =
  (* the statement just before the reader writes the multicast source:
     the issue cannot move, so the pair folds back to a blocking comm *)
  let src =
    wrap {|      FORALL (I = 1:N) A(I) = A(I) + 1.0
      FORALL (I = 1:N) B(I) = B(I) + A(3)|}
  in
  let opt = Driver.compile ~flags:split_only src in
  checkb "refuses: source written just before the reader" true
    (comm_issues opt.Driver.c_ir = [])

let test_split_refuse_conditional_use () =
  (* the reading FORALL sits first inside an IF arm: the issue must not
     escape the conditional (the comm would run when the arm does not) *)
  let src =
    wrap
      {|      T = 1
      FORALL (I = 1:N) B(I) = 2.0*A(I)
      IF (T .GT. 0) THEN
        FORALL (I = 1:N) B(I) = B(I) + A(3)
      END IF|}
  in
  let opt = Driver.compile ~flags:split_only src in
  checkb "refuses: use under a conditional" true (comm_issues opt.Driver.c_ir = []);
  let r_opt = messages opt in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off src) in
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"))

let test_split_concurrent_trees () =
  (* regression (fuzz seed 347): several split multicasts in flight at
     once, rooted at different ranks — each tree must keep its own
     channel, or FIFO matching cross-delivers the slabs *)
  let src =
    {|      PROGRAM SPLITC
      INTEGER, PARAMETER :: N1 = 12
      INTEGER, PARAMETER :: N2 = 4
      INTEGER A1(N1)
      REAL A3(N1)
      REAL B1(N2, N2)
      REAL B2(N2, N2)
      INTEGER V(N1)
C$    DISTRIBUTE A1(BLOCK)
C$    DISTRIBUTE A3(BLOCK)
C$    DISTRIBUTE B1(BLOCK, *)
C$    DISTRIBUTE B2(*, BLOCK)
C$    DISTRIBUTE V(BLOCK)
      FORALL (I = 1:12) A1(I) = I
      FORALL (I = 1:12) V(I) = 2*I
      FORALL (I = 1:4, J = 1:4) B1(I, J) = I + J
      FORALL (I = 1:3:2, J = 1:4) B2(I, J) = 1
      A3 = (MIN((-2.25), A1(12)) - ABS((B1(1, 1) - V(5))))
      END
|}
  in
  let opt = Driver.compile ~flags:split_only src in
  checkb "three concurrent issues (sanity)" true
    (List.length (comm_issues opt.Driver.c_ir) >= 3);
  let r_opt = messages ~nprocs:4 opt in
  let r_plain = messages ~nprocs:4 (Driver.compile ~flags:Passes.all_off src) in
  checkb "concurrent trees deliver the right slabs" true
    (nd_eq (Driver.final r_opt "A3") (Driver.final r_plain "A3"))

let lookahead_loop =
  wrap {|      DO T = 1, 8
        FORALL (I = 1:N) B(I) = B(I) + A(T)
      END DO|}

let test_lookahead_pipelines () =
  let opt = Driver.compile ~flags:split_la lookahead_loop in
  checkb "prologue issue guarded on the loop tripping" true
    (has_guard (function Ir.Sg_trip _ -> true | _ -> false) opt.Driver.c_ir);
  checkb "in-body issue guarded on a next iteration" true
    (has_guard (function Ir.Sg_next _ -> true | _ -> false) opt.Driver.c_ir);
  let r_opt = messages opt in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off lookahead_loop) in
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"));
  checkb "pipelining hides some receive latency" true
    (r_opt.Driver.stats.Stats.recv_wait_hidden > 0.)

let test_lookahead_refused_source_written () =
  (* a swap-like write to the source mid-step, followed by a statement
     that still communicates: the next step's issue has no safe slot *)
  let src =
    wrap
      {|      DO T = 1, 8
        FORALL (I = 1:N) B(I) = B(I) + A(T)
        FORALL (I = 1:N) A(I) = A(I) + 1.0
        FORALL (I = 1:N) U(I) = U(I) + B(3)
      END DO|}
  in
  let opt = Driver.compile ~flags:split_la src in
  checkb "no cross-iteration issue" true
    (not (has_guard (function Ir.Sg_next _ | Ir.Sg_trip _ -> true | _ -> false) opt.Driver.c_ir));
  let r_opt = messages opt in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off src) in
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"))

let test_split_zero_trip_loop () =
  (* both lookahead guards evaluate false on a zero-trip loop: no issue
     fires, no wait blocks, and the comm count matches the plain run *)
  let src =
    wrap {|      DO T = 5, 1
        FORALL (I = 1:N) B(I) = B(I) + A(T)
      END DO|}
  in
  let opt = Driver.compile ~flags:split_la src in
  let r_opt = messages opt in
  let r_plain = messages (Driver.compile ~flags:Passes.all_off src) in
  Alcotest.(check int) "zero-trip loop adds no messages"
    r_plain.Driver.stats.Stats.messages r_opt.Driver.stats.Stats.messages;
  checkb "finals bit-identical" true (nd_eq (Driver.final r_opt "B") (Driver.final r_plain "B"))

let test_split_trace_parallel_identical () =
  (* nonblocking receives and relayed tree forwards must not disturb
     engine determinism: full trace byte-identical seq vs 4 domains *)
  let compiled = Driver.compile ~flags:split_la lookahead_loop in
  let chrome r =
    match r.Driver.trace with
    | Some tr -> F90d_trace.Trace.to_chrome_json tr
    | None -> Alcotest.fail "tracing was on"
  in
  let seq = messages ~trace:true compiled in
  let par = messages ~trace:true ~jobs:4 compiled in
  checkb "split traces byte-identical seq vs --jobs 4" true (chrome seq = chrome par)

let test_gauss_split_wait_reduction () =
  let src = Programs.gauss ~n:63 in
  let run flags = messages ~nprocs:4 (Driver.compile ~flags src) in
  let r_on = run Passes.all_on and r_off = run Passes.all_off in
  checkb "gauss finals bit-identical" true (nd_eq (Driver.final r_on "A") (Driver.final r_off "A"));
  checkb
    (Printf.sprintf "gauss recv_wait strictly lower (%.4f < %.4f)"
       r_on.Driver.stats.Stats.recv_wait r_off.Driver.stats.Stats.recv_wait)
    true
    (r_on.Driver.stats.Stats.recv_wait < r_off.Driver.stats.Stats.recv_wait);
  checkb "gauss hides receive latency" true (r_on.Driver.stats.Stats.recv_wait_hidden > 0.);
  checkb "gauss elapsed no worse" true (r_on.Driver.elapsed <= r_off.Driver.elapsed);
  let r_par = messages ~nprocs:4 ~jobs:4 (Driver.compile ~flags:Passes.all_on src) in
  checkb "gauss parallel engine bit-identical" true
    (nd_eq (Driver.final r_on "A") (Driver.final r_par "A")
    && r_on.Driver.elapsed = r_par.Driver.elapsed)

(* ------------------------------------------------------------------ *)
(* Explain annotations                                                 *)
(* ------------------------------------------------------------------ *)

let test_explain_annotations () =
  let has txt s =
    try
      ignore (Str.search_forward (Str.regexp_string s) txt 0);
      true
    with Not_found -> false
  in
  let hoisted = Driver.compile ~flags:hoist_only invariant_loop in
  let txt = F90d_report.Report.explain_text hoisted.Driver.c_ir in
  checkb "explain mentions hoisting" true (has txt "hoisted out of DO T");
  let batched = Driver.compile ~flags:coalesce_only coalesce_src in
  let txt = F90d_report.Report.explain_text batched.Driver.c_ir in
  checkb "explain mentions the batch" true (has txt "[batch of 2]");
  checkb "explain mentions coalesced member" true (has txt "coalesced into stmt")

let () =
  Alcotest.run "commopt"
    [
      ( "hoist",
        [
          Alcotest.test_case "hoists invariant comm" `Quick test_hoist_happens;
          Alcotest.test_case "zero-trip loop guarded" `Quick test_hoist_zero_trip_loop;
          Alcotest.test_case "refuses written source" `Quick test_refuse_source_written;
          Alcotest.test_case "refuses scatter-written source" `Quick test_refuse_scatter_write;
          Alcotest.test_case "refuses write under nested if" `Quick
            test_refuse_write_under_nested_if;
          Alcotest.test_case "refuses loop-variant amount" `Quick
            test_refuse_loop_variant_amount;
        ] );
      ( "coalesce",
        [
          Alcotest.test_case "batches same-direction shifts" `Quick test_coalesce_batches;
          Alcotest.test_case "refuses interleaved write" `Quick
            test_coalesce_refused_when_interleaved_write;
          Alcotest.test_case "trace identical seq vs jobs=4" `Quick
            test_coalesce_trace_parallel_identical;
          Alcotest.test_case "gauss >= 20% fewer messages" `Quick
            test_gauss_message_reduction;
          Alcotest.test_case "replica cache invalidates on write" `Quick
            test_replica_cache_invalidation;
        ] );
      ( "split",
        [
          Alcotest.test_case "splits across a crossable stmt" `Quick test_split_happens;
          Alcotest.test_case "refuses intervening write" `Quick
            test_split_refuse_intervening_write;
          Alcotest.test_case "refuses conditional use" `Quick test_split_refuse_conditional_use;
          Alcotest.test_case "concurrent trees keep channels" `Quick
            test_split_concurrent_trees;
          Alcotest.test_case "lookahead pipelines the loop" `Quick test_lookahead_pipelines;
          Alcotest.test_case "lookahead refuses written source" `Quick
            test_lookahead_refused_source_written;
          Alcotest.test_case "zero-trip loop guarded" `Quick test_split_zero_trip_loop;
          Alcotest.test_case "trace identical seq vs jobs=4" `Quick
            test_split_trace_parallel_identical;
          Alcotest.test_case "gauss hides receive latency" `Quick
            test_gauss_split_wait_reduction;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "profile = Stats with batches" `Quick
            test_profile_reconciles_with_batches;
          Alcotest.test_case "explain annotations" `Quick test_explain_annotations;
        ] );
    ]
