(* Differential-fuzzing regression suite: replay the shrunk corpus
   repros against the full rank/jobs/passes matrix, pin the generator's
   determinism, and unit-test the compiler fixes the fuzzer flushed out
   (zero-amount shift union, descending strides, stale gather
   schedules). *)

open F90d_base
open F90d_dist
open F90d_fuzz

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Corpus replay                                                       *)
(* ------------------------------------------------------------------ *)

let read_file path =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  s

let corpus_files () =
  Sys.readdir "corpus" |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".f90d")
  |> List.sort compare

let test_corpus_present () =
  checkb "corpus holds the shrunk repros" true (List.length (corpus_files ()) >= 10)

let test_corpus_replay () =
  List.iter
    (fun f ->
      match Diff.check_source (read_file (Filename.concat "corpus" f)) with
      | [] -> ()
      | fails ->
          Alcotest.failf "%s: %s" f (String.concat "; " (List.map Diff.pp_failure fails)))
    (corpus_files ())

(* ------------------------------------------------------------------ *)
(* Generator determinism and smoke                                     *)
(* ------------------------------------------------------------------ *)

let test_gen_deterministic () =
  let text seed = Gen.print ~nprocs:4 (Gen.generate ~seed) in
  checks "same seed, same program" (text 7) (text 7);
  checkb "different seeds differ" true (text 7 <> text 8)

let test_fuzz_smoke () =
  for seed = 0 to 9 do
    match Diff.check_prog (Gen.generate ~seed) with
    | [] -> ()
    | fails ->
        Alcotest.failf "seed %d: %s" seed
          (String.concat "; " (List.map Diff.pp_failure fails))
  done

(* ------------------------------------------------------------------ *)
(* Fixes flushed out by the fuzzer                                     *)
(* ------------------------------------------------------------------ *)

let shift arr amount = F90d_ir.Ir.Overlap_shift { arr; dim = 0; amount }

let test_union_shifts_zero () =
  (* a zero-amount shift moves nothing: it must be dropped, not crash
     the widest-shift filter *)
  checki "zero shift dropped" 0 (List.length (F90d_opt.Passes.union_shifts [ shift "A" 0 ]));
  match F90d_opt.Passes.union_shifts [ shift "A" 0; shift "A" 2; shift "A" 1 ] with
  | [ F90d_ir.Ir.Overlap_shift { amount; _ } ] -> checki "widest survives" 2 amount
  | l -> Alcotest.failf "expected one shift, got %d comms" (List.length l)

let test_iterations_descending () =
  checki "9:1:-3" 3 (Bounds.iterations (Some { Bounds.llb = 9; lub = 1; lst = -3 }));
  checki "1:9:-3 is empty" 0 (Bounds.iterations (Some { Bounds.llb = 1; lub = 9; lst = -3 }));
  checki "masked rank" 0 (Bounds.iterations None);
  checkb "zero stride rejected" true
    (match Bounds.iterations (Some { Bounds.llb = 1; lub = 9; lst = 0 }) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sema_zero_stride () =
  let source =
    "      PROGRAM Z\n      REAL A(5)\n      FORALL (I = 1:5:0) A(I) = 1\n      END\n"
  in
  checkb "zero FORALL stride is a compile-time error" true
    (match F90d.Driver.compile source with
    | exception Diag.Error (_, msg) ->
        (try ignore (Str.search_forward (Str.regexp_string "zero stride") msg 0); true
         with Not_found -> false)
    | _ -> false)

let () =
  Alcotest.run "fuzz"
    [
      ( "corpus",
        [
          Alcotest.test_case "corpus present" `Quick test_corpus_present;
          Alcotest.test_case "corpus replays clean" `Slow test_corpus_replay;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "seeds 0-9 smoke" `Slow test_fuzz_smoke;
        ] );
      ( "fixes",
        [
          Alcotest.test_case "union_shifts zero amount" `Quick test_union_shifts_zero;
          Alcotest.test_case "descending iterations" `Quick test_iterations_descending;
          Alcotest.test_case "zero stride diagnostic" `Quick test_sema_zero_stride;
        ] );
    ]
