(* Bit-identity of the blocked node-kernel layer: every fast path —
   cached plans, strip/fused FORALL execution, tiled MATMUL, flat
   DOT_PRODUCT and reduction folds — must reproduce the plain
   interpreter ([--fno-blocked-kernels]) bit for bit, across odd
   extents, non-unit lower bounds, int/real mixes and worker counts. *)

open F90d_base
open F90d

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let on_flags = F90d_opt.Passes.all_on
let off_flags = { F90d_opt.Passes.all_on with F90d_opt.Passes.blocked_kernels = false }

let run ?(nprocs = 4) ?jobs flags src = Driver.run ~nprocs ?jobs (Driver.compile ~flags src)

(* Exact (bitwise) agreement of two runs: program output, every final
   array, every final scalar, and the simulated clock. *)
let check_identical name (a : Driver.run_result) (b : Driver.run_result) =
  let oa = a.Driver.outcome and ob = b.Driver.outcome in
  Alcotest.(check string) (name ^ ": output") oa.F90d_exec.Interp.output ob.F90d_exec.Interp.output;
  checki (name ^ ": final count")
    (List.length oa.F90d_exec.Interp.finals)
    (List.length ob.F90d_exec.Interp.finals);
  List.iter
    (fun (arr, nda) ->
      let ndb = List.assoc arr ob.F90d_exec.Interp.finals in
      checkb (name ^ ": array " ^ arr ^ " bit-identical") true (Ndarray.equal nda ndb))
    oa.F90d_exec.Interp.finals;
  List.iter
    (fun (s, va) ->
      let vb = List.assoc s ob.F90d_exec.Interp.final_scalars in
      checkb (name ^ ": scalar " ^ s) true (Scalar.equal va vb))
    oa.F90d_exec.Interp.final_scalars;
  checkb (name ^ ": simulated time") true (a.Driver.elapsed = b.Driver.elapsed)

let kernel_on_vs_off ?nprocs name src =
  let r_on = run ?nprocs on_flags src and r_off = run ?nprocs off_flags src in
  check_identical name r_on r_off;
  r_on

(* ------------------------------------------------------------------ *)

let test_gauss_fused_update () =
  (* the rank-1 update A(I,J) = A(I,J) - W(I)*A(K,J) is the fused-pass
     poster child, and the MOD/MERGE initialisation exercises the
     compiled relational mask.  Nothing may fall back, and the update
     must actually take the blocked path. *)
  let r = kernel_on_vs_off "gauss n=23" (Programs.gauss ~n:23) in
  checki "gauss: zero kernel fallbacks" 0 r.Driver.stats.F90d_machine.Stats.kernel_fallbacks;
  checkb "gauss: kernel ran" true (r.Driver.stats.F90d_machine.Stats.kernel_runs > 0);
  checkb "gauss: blocked loops ran" true (r.Driver.stats.F90d_machine.Stats.kernel_blocked > 0)

let test_gauss_cyclic () =
  (* CYCLIC distribution: strided owned sections, non-unit storage steps *)
  ignore (kernel_on_vs_off "gauss cyclic n=19" (Programs.gauss_dist ~dist:`Cyclic ~n:19))

let test_matmul_odd_extents () =
  (* replicated-path MATMUL with inner extent 70: the default 64-wide
     k tile leaves a remainder tile, whose accumulation order must still
     match the scalar triple loop exactly *)
  ignore
    (kernel_on_vs_off "matmul 3x70 * 70x4"
       {|
      PROGRAM MM1
      REAL A(3, 70), B(70, 4), C(3, 4)
C$    DISTRIBUTE A(BLOCK, *)
C$    ALIGN B(I, J) WITH A(*, *)
C$    ALIGN C(I, J) WITH A(*, *)
      FORALL (I = 1:3, J = 1:70) A(I, J) = 1.0 / (I + J)
      FORALL (I = 1:70, J = 1:4) B(I, J) = 1.0 / (3*I + J)
      C = MATMUL(A, B)
      END
      |})

let test_matmul_summa_grid () =
  (* SUMMA-shaped: both operands on a 2-D grid; the flat panel update
     must agree with the boxed one *)
  ignore
    (kernel_on_vs_off "matmul summa 5x7 * 7x3"
       {|
      PROGRAM MM2
C$    PROCESSORS P(2, 2)
      REAL A(5, 7), B(7, 3), C(5, 3)
C$    TEMPLATE T(7, 7)
C$    ALIGN A(I, J) WITH T(I, J)
C$    ALIGN B(I, J) WITH T(I, J)
C$    ALIGN C(I, J) WITH T(I, J)
C$    DISTRIBUTE T(BLOCK, BLOCK)
      FORALL (I = 1:5, J = 1:7) A(I, J) = I + 0.5*J
      FORALL (I = 1:7, J = 1:3) B(I, J) = I*J + 0.25
      C = MATMUL(A, B)
      END
      |})

let test_dot_product_and_folds () =
  (* flat multiply-accumulate and the compare-based MAX/MIN folds *)
  ignore
    (kernel_on_vs_off "dot product + reductions"
       {|
      PROGRAM DP1
      REAL X(13), Y(13), S, MX, MN, SM
C$    DISTRIBUTE X(BLOCK)
C$    ALIGN Y(I) WITH X(I)
      FORALL (I = 1:13) X(I) = 1.0 / I
      FORALL (I = 1:13) Y(I) = 14 - I + 0.125
      S = DOT_PRODUCT(X, Y)
      MX = MAXVAL(Y)
      MN = MINVAL(X)
      SM = SUM(X)
      END
      |})

let test_nonunit_lower_bounds () =
  (* declared bounds A(0:12), offsets in both the subscripts and the
     iteration sets *)
  ignore
    (kernel_on_vs_off "non-unit lower bounds"
       {|
      PROGRAM LB1
      REAL A(0:12), B(0:12)
C$    DISTRIBUTE A(BLOCK)
C$    ALIGN B(I) WITH A(I)
      FORALL (I = 0:12) B(I) = 2*I + 1
      FORALL (I = 1:11) A(I) = B(I - 1) + 0.5*B(I + 1)
      END
      |})

let test_int_real_mix () =
  (* integer arrays feed real arithmetic through Nloadi widening; MOD
     on integers must truncate exactly like the interpreter *)
  ignore
    (kernel_on_vs_off "int/real mix"
       {|
      PROGRAM IR1
      INTEGER K(9)
      REAL A(9)
C$    DISTRIBUTE K(BLOCK)
C$    ALIGN A(I) WITH K(I)
      FORALL (I = 1:9) K(I) = MOD(7*I, 5) - 2
      FORALL (I = 1:9) A(I) = K(I) / 4.0 + MERGE(1.0, 0.0, I == 5)
      END
      |})

let test_jobs_byte_identity () =
  (* the kernel layer must be deterministic under real parallelism:
     sequential and --jobs 4 runs of the same program agree bitwise *)
  let src = Programs.gauss ~n:23 in
  let seq = run ~nprocs:4 ~jobs:1 on_flags src in
  let par = run ~nprocs:4 ~jobs:4 on_flags src in
  check_identical "gauss seq vs jobs=4" seq par

let () =
  Alcotest.run "kernel"
    [
      ( "blocked-kernel bit-identity",
        [
          Alcotest.test_case "gauss fused update" `Quick test_gauss_fused_update;
          Alcotest.test_case "gauss cyclic" `Quick test_gauss_cyclic;
          Alcotest.test_case "matmul odd extents / tile remainder" `Quick test_matmul_odd_extents;
          Alcotest.test_case "matmul summa grid" `Quick test_matmul_summa_grid;
          Alcotest.test_case "dot product and folds" `Quick test_dot_product_and_folds;
          Alcotest.test_case "non-unit lower bounds" `Quick test_nonunit_lower_bounds;
          Alcotest.test_case "int/real mix" `Quick test_int_real_mix;
          Alcotest.test_case "seq vs jobs=4 byte identity" `Quick test_jobs_byte_identity;
        ] );
    ]
