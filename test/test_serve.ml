(* The serve subsystem (lib/serve): the JSON codec and wire framing at
   the daemon boundary, the persisted schedule store (including
   corruption recovery), the service dispatch (malformed requests,
   timeouts), and the property the whole design leans on — daemon
   responses bit-identical to the in-process one-shot path at equal
   cache temperature, even under concurrent clients. *)

open F90d_serve

(* ------------------------------------------------------------------ *)
(* JSON codec                                                          *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let cases =
    [
      "null";
      "true";
      "[]";
      "{}";
      "[1,2,3]";
      {|{"a":1,"b":[true,false,null],"c":"x\ny"}|};
      {|{"nested":{"deep":[{"k":"v"}]}}|};
      "-42";
      "0.5";
    ]
  in
  List.iter
    (fun s ->
      let v = Json.parse s in
      let v' = Json.parse (Json.to_string v) in
      Alcotest.(check string) ("roundtrip " ^ s) (Json.to_string v) (Json.to_string v'))
    cases

let test_json_float_bits () =
  (* %.17g must round-trip doubles exactly — the protocol's bit-identity
     guarantee for simulated times rests on it *)
  List.iter
    (fun x ->
      match Json.parse (Json.to_string (Json.Float x)) with
      | Json.Float y ->
          Alcotest.(check bool)
            (Printf.sprintf "bits of %h" x)
            true
            (Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
      | Json.Int y ->
          Alcotest.(check bool)
            (Printf.sprintf "integral %h" x)
            true
            (float_of_int y = x)
      | _ -> Alcotest.fail "not a number")
    [ 0.1; 1. /. 3.; 1e-300; 1.7976931348623157e308; 0.30000000000000004; 2.; -0. ]

let test_json_rejects () =
  List.iter
    (fun s ->
      match Json.parse s with
      | exception Json.Parse_error _ -> ()
      | _ -> Alcotest.fail ("accepted malformed: " ^ s))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated"; "{\"a\" 1}"; "nan" ]

let test_json_strings () =
  let v = Json.parse {|"éA😀 \\ \" \n"|} in
  match v with
  | Json.Str s ->
      (* é, A, an emoji through a surrogate pair, escapes *)
      Alcotest.(check string) "utf8" "\xc3\xa9A\xf0\x9f\x98\x80 \\ \" \n" s;
      Alcotest.(check string) "reprint parses back"
        s
        (match Json.parse (Json.to_string v) with Json.Str s' -> s' | _ -> "?")
  | _ -> Alcotest.fail "not a string"

(* ------------------------------------------------------------------ *)
(* Wire framing                                                        *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_wire_roundtrip () =
  with_socketpair (fun a b ->
      let payloads = [ ""; "x"; String.make 100_000 'q'; "{\"op\":\"run\"}" ] in
      List.iter
        (fun p ->
          Wire.write_frame a p;
          Alcotest.(check string) "frame payload" p (Wire.read_frame b))
        payloads)

let test_wire_closed () =
  with_socketpair (fun a b ->
      Unix.close a;
      match Wire.read_frame b with
      | exception Wire.Closed -> ()
      | _ -> Alcotest.fail "expected Closed")

let test_wire_bad_header () =
  List.iter
    (fun junk ->
      with_socketpair (fun a b ->
          let _ = Unix.write_substring a junk 0 (String.length junk) in
          Unix.close a;
          match Wire.read_frame b with
          | exception Wire.Framing _ -> ()
          | exception Wire.Closed -> ()
          | _ -> Alcotest.fail ("accepted bad header: " ^ String.escaped junk)))
    [ "notdigits\n"; "12x\n"; "99999999999999999999999\n"; "999999999999\nhello" ]

(* ------------------------------------------------------------------ *)
(* Store: persistence, corruption recovery                             *)
(* ------------------------------------------------------------------ *)

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "f90d-test-serve-%d-%d" (Unix.getpid ()) !counter)
    in
    (try Sys.mkdir d 0o755 with Sys_error _ -> ());
    d

let sample_ranks =
  [|
    [ ("k0", "blob-zero"); ("k1", String.make 513 '\x00') ];
    [];
    [ ("other", "\xff\xfe binary \n bytes") ];
  |]

let test_store_roundtrip () =
  let st = Store.create ~dir:(tmp_dir ()) in
  Alcotest.(check bool) "initial miss" true (Store.load st ~key:"abc" = None);
  Store.save st ~key:"abc" sample_ranks;
  (match Store.load st ~key:"abc" with
  | Some ranks -> Alcotest.(check bool) "payload" true (ranks = sample_ranks)
  | None -> Alcotest.fail "expected hit");
  Alcotest.(check int) "hit counter" 1 (Store.hits st);
  Alcotest.(check int) "miss counter" 1 (Store.misses st)

let corrupt_file path f =
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let s' = f s in
  let oc = open_out_bin path in
  output_string oc s';
  close_out oc

let test_store_corruption () =
  let flip s i =
    let b = Bytes.of_string s in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
    Bytes.to_string b
  in
  let scenarios =
    [
      ("bit flip in body", fun s -> flip s (String.length s - 3));
      ("truncation", fun s -> String.sub s 0 (String.length s - 5));
      ("wrong magic", fun s -> "not-a-store" ^ s);
      ( "stale layout version",
        fun s ->
          Str.replace_first
            (Str.regexp "f90d_cache_version [0-9]+")
            "f90d_cache_version 999999" s );
      ("emptied", fun _ -> "");
    ]
  in
  List.iter
    (fun (name, mangle) ->
      let st = Store.create ~dir:(tmp_dir ()) in
      Store.save st ~key:"k" sample_ranks;
      let path = Filename.concat (Store.dir st) "sched-k.bin" in
      corrupt_file path mangle;
      Alcotest.(check bool) (name ^ " rejected") true (Store.load st ~key:"k" = None);
      Alcotest.(check int) (name ^ " counted") 1 (Store.corrupt st);
      Alcotest.(check bool) (name ^ " deleted") false (Sys.file_exists path);
      (* and the store still works: rebuild, reload *)
      Store.save st ~key:"k" sample_ranks;
      Alcotest.(check bool) (name ^ " rebuilt") true (Store.load st ~key:"k" <> None))
    scenarios

(* ------------------------------------------------------------------ *)
(* Service dispatch                                                    *)
(* ------------------------------------------------------------------ *)

let geti resp key = Option.value ~default:(-1) (Option.bind (Json.mem resp key) Json.int)
let gets resp key = Option.value ~default:"" (Option.bind (Json.mem resp key) Json.str)
let ok resp = Json.mem resp "ok" = Some (Json.Bool true)
let cache_temp resp level =
  Option.value ~default:""
    (Option.bind (Option.bind (Json.mem resp "cache") (fun c -> Json.mem c level)) Json.str)

let run_req ?(nprocs = 4) ?(extra = []) demo n =
  Json.Obj
    ([
       ("op", Json.Str "run");
       ("demo", Json.Str demo);
       ("demo_n", Json.Int n);
       ("nprocs", Json.Int nprocs);
       ("finals", Json.Bool true);
     ]
    @ extra)

let test_service_cold_warm () =
  let svc = Service.create ~store:(Store.create ~dir:(tmp_dir ())) () in
  let req = run_req "irregular" 128 in
  let cold = Service.handle svc req in
  let warm = Service.handle svc req in
  Alcotest.(check bool) "cold ok" true (ok cold);
  Alcotest.(check bool) "warm ok" true (ok warm);
  Alcotest.(check string) "cold l3" "miss" (cache_temp cold "l3");
  Alcotest.(check string) "warm l3" "hit" (cache_temp warm "l3");
  Alcotest.(check string) "warm l1" "hit" (cache_temp warm "l1");
  Alcotest.(check bool) "cold builds schedules" true (geti cold "sched_builds" > 0);
  Alcotest.(check int) "warm builds none" 0 (geti warm "sched_builds");
  (* data results are temperature-independent *)
  Alcotest.(check string) "same finals" (gets cold "finals_digest") (gets warm "finals_digest");
  Alcotest.(check string) "same output" (gets cold "output") (gets warm "output");
  (* a warm replay is deterministic down to the byte *)
  let warm2 = Service.handle svc req in
  Alcotest.(check string) "warm replay bit-identical"
    (Json.to_string (Service.strip_volatile warm))
    (Json.to_string (Service.strip_volatile warm2))

let test_service_rejects () =
  let svc = Service.create () in
  let bad =
    [
      "no op", Json.Obj [];
      "op not a string", Json.Obj [ ("op", Json.Int 3) ];
      "unknown op", Json.Obj [ ("op", Json.Str "frobnicate") ];
      "no source", Json.Obj [ ("op", Json.Str "run") ];
      ("bad nprocs type",
       Json.Obj [ ("op", Json.Str "run"); ("demo", Json.Str "jacobi"); ("nprocs", Json.Str "x") ]);
      ("unknown demo", Json.Obj [ ("op", Json.Str "run"); ("demo", Json.Str "nope") ]);
      ("unknown pass",
       Json.Obj
         [ ("op", Json.Str "compile"); ("demo", Json.Str "jacobi");
           ("fno", Json.List [ Json.Str "warp-drive" ]) ]);
      ("syntax error in source",
       Json.Obj [ ("op", Json.Str "compile"); ("source", Json.Str "PROGRAM ???") ]);
      "not even json", Json.Str "run";
    ]
  in
  List.iter
    (fun (name, req) ->
      let resp = Service.handle svc req in
      Alcotest.(check bool) (name ^ " rejected") false (ok resp);
      Alcotest.(check bool) (name ^ " has error") true (gets resp "error" <> ""))
    bad;
  (* the service is still alive and serves the next good request *)
  let resp = Service.handle svc (run_req "jacobi" 32) in
  Alcotest.(check bool) "still serving after rejects" true (ok resp);
  (* and a malformed frame payload is an error response, not an exception *)
  let reply, next = Service.handle_line svc "{\"op\": " in
  Alcotest.(check bool) "malformed line rejected" true
    (String.length reply > 0 && not (ok (Json.parse reply)));
  Alcotest.(check bool) "connection continues" true (next = `Continue)

let test_service_timeout () =
  let svc = Service.create ~store:(Store.create ~dir:(tmp_dir ())) () in
  let slow = run_req "gauss" 300 ~nprocs:8 ~extra:[ ("timeout_s", Json.Float 0.005) ] in
  let resp = Service.handle svc slow in
  Alcotest.(check bool) "timed out" false (ok resp);
  Alcotest.(check bool) "flagged as timeout" true
    (Json.mem resp "timeout" = Some (Json.Bool true));
  (* the timeout cancelled cooperatively: the service still works, and
     the aborted run must not have persisted partial schedules *)
  let resp2 = Service.handle svc (run_req "irregular" 128) in
  Alcotest.(check bool) "alive after timeout" true (ok resp2);
  Alcotest.(check string) "aborted run persisted nothing" "miss" (cache_temp resp2 "l3")

let test_service_store_corruption_rebuild () =
  let store = Store.create ~dir:(tmp_dir ()) in
  let svc = Service.create ~store () in
  let req = run_req "irregular" 128 in
  let cold = Service.handle svc req in
  (* corrupt the single artifact on disk *)
  (match Sys.readdir (Store.dir store) with
  | [| name |] ->
      corrupt_file (Filename.concat (Store.dir store) name) (fun s ->
          String.sub s 0 (String.length s / 2))
  | files -> Alcotest.fail (Printf.sprintf "expected 1 artifact, found %d" (Array.length files)));
  let rebuilt = Service.handle svc req in
  Alcotest.(check bool) "rebuild ok" true (ok rebuilt);
  Alcotest.(check string) "rebuild is a miss" "miss" (cache_temp rebuilt "l3");
  Alcotest.(check int) "corruption counted" 1 (Store.corrupt store);
  Alcotest.(check string) "same finals after rebuild" (gets cold "finals_digest")
    (gets rebuilt "finals_digest");
  (* the rebuilt artifact is valid again *)
  let warm = Service.handle svc req in
  Alcotest.(check string) "warm again" "hit" (cache_temp warm "l3");
  Alcotest.(check int) "no schedule builds" 0 (geti warm "sched_builds")

(* value of the exposition sample whose "name{labels}" part is [key] *)
let msample text key =
  String.split_on_char '\n' text
  |> List.find_map (fun line ->
         match String.rindex_opt line ' ' with
         | Some sp when String.sub line 0 sp = key ->
             Some (float_of_string (String.sub line (sp + 1) (String.length line - sp - 1)))
         | _ -> None)

let msample_exn text key =
  match msample text key with
  | Some v -> v
  | None -> Alcotest.fail ("no metric sample for " ^ key)

(* The metrics op: required families present, and across a cold->warm
   pass sched_builds stays flat while the l3 hit counter increases —
   the cache is what makes the warm pass cheap, and the scrape proves
   it. *)
let test_service_metrics () =
  let svc = Service.create ~store:(Store.create ~dir:(tmp_dir ())) () in
  let scrape () =
    let resp = Service.handle svc (Json.Obj [ ("op", Json.Str "metrics") ]) in
    Alcotest.(check bool) "metrics ok" true (ok resp);
    Alcotest.(check string) "format" "prometheus-text-0.0.4" (gets resp "format");
    gets resp "body"
  in
  ignore (Service.handle svc (run_req "irregular" 128));
  let cold = scrape () in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("family present: " ^ key) true (msample cold key <> None))
    [
      {|f90d_requests_total{op="run"}|};
      {|f90d_requests_total{op="metrics"}|};
      {|f90d_request_duration_seconds_bucket{op="run",le="+Inf"}|};
      "f90d_request_duration_seconds_sum{op=\"run\"}";
      "f90d_request_errors_total";
      "f90d_request_timeouts_total";
      "f90d_requests_in_flight";
      "f90d_runs_total";
      {|f90d_cache_hits_total{level="l1"}|};
      {|f90d_cache_misses_total{level="l3"}|};
      {|f90d_cache_entries{level="l1"}|};
      "f90d_store_corrupt_total";
      "f90d_store_size_bytes";
      "f90d_store_artifacts";
      "f90d_pool_workers";
      "f90d_pool_queue_depth";
      "f90d_uptime_seconds";
      "f90d_sim_messages_total";
      "f90d_sim_bytes_total";
      "f90d_sched_builds_total";
      "f90d_sched_hits_total";
      "f90d_sim_elapsed_seconds_total";
    ];
  Alcotest.(check bool) "cold built schedules" true (msample_exn cold "f90d_sched_builds_total" > 0.);
  Alcotest.(check bool) "cold l3 miss" true
    (msample_exn cold {|f90d_cache_misses_total{level="l3"}|} >= 1.);
  Alcotest.(check bool) "no corruption" true (msample_exn cold "f90d_store_corrupt_total" = 0.);
  Alcotest.(check bool) "run counted" true (msample_exn cold {|f90d_requests_total{op="run"}|} = 1.);
  Alcotest.(check bool) "build_info" true
    (msample cold
       (Printf.sprintf {|f90d_build_info{version="%s",cache_version="%d"}|}
          F90d_base.Util.package_version F90d_base.Util.cache_version)
    = Some 1.);
  ignore (Service.handle svc (run_req "irregular" 128));
  let warm = scrape () in
  Alcotest.(check bool) "sched_builds flat across warm pass" true
    (msample_exn warm "f90d_sched_builds_total" = msample_exn cold "f90d_sched_builds_total");
  Alcotest.(check bool) "l3 hits increased" true
    (msample_exn warm {|f90d_cache_hits_total{level="l3"}|}
    > msample_exn cold {|f90d_cache_hits_total{level="l3"}|});
  Alcotest.(check bool) "runs_total tracks" true (msample_exn warm "f90d_runs_total" = 2.);
  (* unknown and malformed requests land in op="other", keeping the
     requests_total sum complete *)
  ignore (Service.handle svc (Json.Obj [ ("op", Json.Str "frobnicate") ]));
  ignore (Service.handle_line svc "{\"op\": ");
  let after = scrape () in
  Alcotest.(check bool) "unknown ops counted as other" true
    (msample_exn after {|f90d_requests_total{op="other"}|} = 2.);
  Alcotest.(check bool) "errors counted" true (msample_exn after "f90d_request_errors_total" = 2.)

(* ------------------------------------------------------------------ *)
(* Daemon over a real socket                                           *)
(* ------------------------------------------------------------------ *)

let with_daemon ?(workers = 3) f =
  let dir = tmp_dir () in
  let sock = Filename.concat dir "d.sock" in
  let service =
    Service.create ~store:(Store.create ~dir:(Filename.concat dir "store")) ~workers ()
  in
  let srv = Server.start ~workers ~service ~sock_path:sock () in
  let r =
    try f sock
    with e ->
      Server.stop srv;
      Server.wait srv;
      raise e
  in
  Client.with_conn sock (fun c -> ignore (Client.request c (Json.Obj [ ("op", Json.Str "shutdown") ])));
  Server.wait srv;
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists sock);
  r

let test_daemon_basic () =
  with_daemon (fun sock ->
      Client.with_conn sock (fun c ->
          let cold = Client.request c (run_req "irregular" 128) in
          let warm = Client.request c (run_req "irregular" 128) in
          Alcotest.(check bool) "cold ok" true (ok cold);
          Alcotest.(check string) "warm l3 hit" "hit" (cache_temp warm "l3");
          Alcotest.(check int) "warm sched_builds" 0 (geti warm "sched_builds");
          (* a framing-level error response, then the daemon still answers
             on a fresh connection *)
          let reply, _ = (Service.handle_line (Service.create ()) "zap" : string * _) in
          ignore reply);
      (* malformed JSON payload over the real socket *)
      Client.with_conn sock (fun c ->
          let resp = Json.parse (Client.request_raw c "zap!") in
          Alcotest.(check bool) "malformed rejected" false (ok resp));
      Client.with_conn sock (fun c ->
          let resp = Client.request c (Json.Obj [ ("op", Json.Str "stats") ]) in
          Alcotest.(check bool) "stats after malformed" true (ok resp);
          Alcotest.(check bool) "stats counts errors" true (geti resp "errors" >= 1)))

(* The stats op is a thin view over the same registry: request counts
   match by_op exactly, and in_flight reads 1 while the stats request
   itself is being served.  Over the socket, the pool gauges report the
   real worker count. *)
let test_daemon_stats_metrics () =
  with_daemon ~workers:3 (fun sock ->
      Client.with_conn sock (fun c ->
          ignore (Client.request c (run_req "jacobi" 32));
          let stats = Client.request c (Json.Obj [ ("op", Json.Str "stats") ]) in
          Alcotest.(check bool) "stats ok" true (ok stats);
          Alcotest.(check int) "in_flight is this request" 1 (geti stats "in_flight");
          Alcotest.(check bool) "uptime present" true
            (Option.bind (Json.mem stats "uptime_s") Json.float <> None);
          Alcotest.(check int) "workers" 3 (geti stats "workers");
          (match Json.mem stats "by_op" with
          | Some (Json.Obj kv) ->
              let sum =
                List.fold_left (fun acc (_, v) -> acc + Option.value ~default:0 (Json.int v)) 0 kv
              in
              Alcotest.(check int) "requests = sum of by_op" (geti stats "requests") sum;
              Alcotest.(check (option int)) "run counted" (Some 1)
                (Option.bind (List.assoc_opt "run" kv) Json.int)
          | _ -> Alcotest.fail "stats has no by_op object");
          let m = Client.request c (Json.Obj [ ("op", Json.Str "metrics") ]) in
          Alcotest.(check bool) "metrics ok" true (ok m);
          let body = gets m "body" in
          Alcotest.(check (option (float 0.))) "pool workers gauge" (Some 3.)
            (msample body "f90d_pool_workers");
          Alcotest.(check bool) "stats op counted" true
            (msample_exn body {|f90d_requests_total{op="stats"}|} = 1.);
          (* thin views and exposition agree *)
          Alcotest.(check bool) "views agree on run count" true
            (msample_exn body {|f90d_requests_total{op="run"}|} = 1.)))

(* Satellite: concurrent-run isolation.  N clients fire the same warm
   request simultaneously from separate threads; every response must be
   byte-identical to the sequential warm response, including the cache
   temperatures and the schedule-cache hit accounting. *)
let test_daemon_concurrent_isolation () =
  with_daemon (fun sock ->
      let reqs =
        [ run_req "irregular" 128; run_req "jacobi" 32; run_req "gauss" 48 ~nprocs:8 ]
      in
      (* warm every cache level first *)
      let reference =
        Client.with_conn sock (fun c ->
            List.map (fun r -> ignore (Client.request c r); Client.request c r) reqs)
      in
      List.iter
        (fun r -> Alcotest.(check int) "reference is warm" 0 (geti r "sched_builds"))
        reference;
      let strip r = Json.to_string (Service.strip_volatile r) in
      let n_threads = 8 in
      let results = Array.make n_threads [] in
      let threads =
        Array.init n_threads (fun i ->
            Thread.create
              (fun () ->
                results.(i) <-
                  Client.with_conn sock (fun c -> List.map (Client.request c) reqs))
              ())
      in
      Array.iter Thread.join threads;
      Array.iteri
        (fun i resps ->
          List.iter2
            (fun want got ->
              Alcotest.(check string)
                (Printf.sprintf "thread %d bit-identical to solo warm" i)
                (strip want) (strip got))
            reference resps)
        results)

(* Concurrent cold compiles of distinct programs must each succeed and
   match what a lone service produces for the same program. *)
let test_daemon_concurrent_distinct () =
  with_daemon (fun sock ->
      let solo = Service.create ~store:(Store.create ~dir:(tmp_dir ())) () in
      let cases = [ ("irregular", 96); ("jacobi", 40); ("gauss", 56); ("fft", 64) ] in
      let results = Array.make (List.length cases) Json.Null in
      let threads =
        List.mapi
          (fun i (demo, n) ->
            Thread.create
              (fun () ->
                results.(i) <-
                  Client.with_conn sock (fun c -> Client.request c (run_req demo n)))
              ())
          cases
      in
      List.iter Thread.join threads;
      List.iteri
        (fun i (demo, n) ->
          let daemon_resp = results.(i) in
          let solo_resp = Service.handle solo (run_req demo n) in
          Alcotest.(check bool) (demo ^ " ok") true (ok daemon_resp);
          Alcotest.(check string)
            (demo ^ " finals match solo")
            (gets solo_resp "finals_digest")
            (gets daemon_resp "finals_digest");
          Alcotest.(check int)
            (demo ^ " same messages")
            (geti solo_resp "messages") (geti daemon_resp "messages"))
        cases)

let test_daemon_timeout_isolation () =
  (* a request that times out must not disturb a concurrent good request *)
  with_daemon (fun sock ->
      let good = ref Json.Null and timed = ref Json.Null in
      let t1 =
        Thread.create
          (fun () ->
            timed :=
              Client.with_conn sock (fun c ->
                  Client.request c
                    (run_req "gauss" 300 ~nprocs:8
                       ~extra:[ ("timeout_s", Json.Float 0.005) ])))
          ()
      in
      let t2 =
        Thread.create
          (fun () ->
            good := Client.with_conn sock (fun c -> Client.request c (run_req "jacobi" 32)))
          ()
      in
      Thread.join t1;
      Thread.join t2;
      Alcotest.(check bool) "timed out" false (ok !timed);
      Alcotest.(check bool) "timeout flagged" true
        (Json.mem !timed "timeout" = Some (Json.Bool true));
      Alcotest.(check bool) "concurrent request unaffected" true (ok !good))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "serve"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float bit round-trip" `Quick test_json_float_bits;
          Alcotest.test_case "rejects malformed" `Quick test_json_rejects;
          Alcotest.test_case "string escapes and surrogates" `Quick test_json_strings;
        ] );
      ( "wire",
        [
          Alcotest.test_case "frame roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "clean EOF" `Quick test_wire_closed;
          Alcotest.test_case "bad headers" `Quick test_wire_bad_header;
        ] );
      ( "store",
        [
          Alcotest.test_case "save/load roundtrip" `Quick test_store_roundtrip;
          Alcotest.test_case "corruption detected, dropped, rebuilt" `Quick
            test_store_corruption;
        ] );
      ( "service",
        [
          Alcotest.test_case "cold then warm (sched_builds = 0)" `Quick test_service_cold_warm;
          Alcotest.test_case "malformed requests rejected, service lives" `Quick
            test_service_rejects;
          Alcotest.test_case "request timeout" `Quick test_service_timeout;
          Alcotest.test_case "metrics op: families, warm-pass deltas" `Quick
            test_service_metrics;
          Alcotest.test_case "store corruption mid-service" `Quick
            test_service_store_corruption_rebuild;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "cold/warm over the socket" `Quick test_daemon_basic;
          Alcotest.test_case "stats thin views and pool gauges" `Quick
            test_daemon_stats_metrics;
          Alcotest.test_case "concurrent warm runs bit-identical" `Quick
            test_daemon_concurrent_isolation;
          Alcotest.test_case "concurrent distinct programs" `Quick
            test_daemon_concurrent_distinct;
          Alcotest.test_case "timeout does not disturb neighbours" `Quick
            test_daemon_timeout_isolation;
        ] );
    ]
